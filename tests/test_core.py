"""Horse façade tests: engine selection, policy wiring, results."""

import pytest

from repro import Flow, Horse, HorseConfig, TrafficMatrix
from repro.errors import ExperimentError
from repro.net.generators import full_mesh, single_switch, tree
from repro.openflow.headers import tcp_flow


def flow_between(topo, src, dst, **kw):
    s, d = topo.host(src), topo.host(dst)
    sport = kw.pop("sport", 1000)
    defaults = dict(demand_bps=1e6, size_bytes=100_000)
    defaults.update(kw)
    return Flow(
        headers=tcp_flow(s.ip, d.ip, sport, 80),
        src=src,
        dst=dst,
        **defaults,
    )


class TestFacade:
    def test_flow_engine_end_to_end(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        )
        horse.submit_flows([flow_between(topo, "h1", "h4")])
        result = horse.run()
        assert result.row()["completed"] == 1
        assert result.delivered_fraction == 1.0
        assert result.rule_count > 0
        assert result.wall_time_s > 0

    def test_packet_engine_end_to_end(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
            config=HorseConfig(engine="packet"),
        )
        horse.submit_flows([flow_between(topo, "h1", "h4", demand_bps=8e6)])
        result = horse.run(until=60.0)
        assert result.row()["completed"] == 1

    def test_pipeline_tables_sized_for_policies(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={
                "forwarding": "shortest-path",
                "rate_limiting": [{"src": "h1", "dst": "h4", "rate": "1 Mbps"}],
            },
        )
        assert len(topo.switches[0].pipeline.tables) == 2

    def test_submit_matrix(self):
        topo = single_switch(4, capacity_bps=1e9)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        )
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 12e6)
        flows = horse.submit_matrix(tm, horizon_s=2.0)
        assert flows
        result = horse.run(until=30.0)
        assert result.row()["completed"] > 0

    def test_constant_rate_matrix(self):
        topo = single_switch(3, capacity_bps=1e9)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        )
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 6e6)
        flows = horse.submit_matrix(tm, horizon_s=2.0, constant_rate=True)
        assert len(flows) == 6
        result = horse.run()
        assert result.sim_time_s == pytest.approx(2.0)

    def test_link_failure_injection(self):
        topo = full_mesh(3, hosts_per_switch=1)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        )
        flow = flow_between(topo, "h1", "h2", size_bytes=None, duration_s=6.0)
        horse.submit_flows([flow])
        horse.fail_link(2.0, "s1", "s2")
        horse.restore_link(4.0, "s1", "s2")
        result = horse.run()
        assert flow.reroutes >= 2
        assert result.delivered_fraction == 1.0

    def test_monitoring_enabled_via_config(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
            config=HorseConfig(monitor_interval_s=1.0),
        )
        horse.submit_flows(
            [flow_between(topo, "h1", "h4", size_bytes=None, duration_s=3.0)]
        )
        result = horse.run()
        assert result.monitor_samples

    def test_packet_engine_rejects_failure_injection(self):
        topo = tree(2, 2)
        horse = Horse(topo, config=HorseConfig(engine="packet"))
        with pytest.raises(ExperimentError):
            horse.fail_link(1.0, "s1", "s2")

    def test_policies_and_controller_mutually_exclusive(self):
        from repro.control import Controller

        topo = tree(2, 2)
        with pytest.raises(ExperimentError):
            Horse(topo, policies={}, controller=Controller())

    def test_config_validation(self):
        with pytest.raises(ExperimentError):
            HorseConfig(engine="quantum")
        with pytest.raises(ExperimentError):
            HorseConfig(control_latency_s=-1)
        with pytest.raises(ExperimentError):
            HorseConfig(pipeline_tables=0)

    def test_result_throughput_and_fairness(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        )
        horse.submit_flows(
            [
                flow_between(topo, "h1", "h4", demand_bps=2e6),
                flow_between(topo, "h2", "h3", demand_bps=2e6, sport=1001),
            ]
        )
        result = horse.run()
        assert result.fairness() == pytest.approx(1.0, abs=0.01)
        assert result.goodput_bps() > 0
        assert set(result.fct_summary()) >= {"count", "mean", "p99"}

    def test_control_latency_blocks_then_unblocks_reactive_flows(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": "learning"},
            config=HorseConfig(control_latency_s=0.1),
        )
        flow = flow_between(topo, "h1", "h4")
        horse.submit_flows([flow])
        result = horse.run(until=30.0)
        # With asynchronous control the flow is briefly blocked, then the
        # installed rules deliver it.
        assert flow.delivered
        assert result.engine_summary["packet_ins"] >= 1
