"""Data-plane static analyzer tests.

Covers the full taxonomy: loops (parallel links), blackholes (mid-path
miss, dangling port, down link), shadowed/redundant/conflicting rules,
intent verification (reachability + path deviation), clean fixtures
(linear, IXP, ECMP leaf-spine), the programmatic hooks
(``Horse.analyze`` / ``Controller.verify``), and the ``repro analyze``
CLI subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    DataPlaneAnalyzer,
    Finding,
    KIND_BLACKHOLE,
    KIND_LOOP,
    KIND_PATH_DEVIATION,
    KIND_REACHABILITY,
    KIND_REDUNDANT_RULE,
    KIND_RULE_CONFLICT,
    KIND_SHADOWED_RULE,
    SEVERITY_ERROR,
    analyze_network,
    derive_traffic_classes,
    find_table_findings,
    walk_pipeline,
)
from repro.analysis.rules import detect_rule_conflicts
from repro.cli import main
from repro.control.policy.spec import BlackholingSpec, SourceRoutingSpec
from repro.control.policy.validation import validate_composition
from repro.core import Horse
from repro.errors import VerificationError
from repro.ixp import build_ixp
from repro.net import IPv4Address
from repro.net.generators import full_mesh, leaf_spine, linear
from repro.net.topology import Topology
from repro.openflow import (
    ApplyActions,
    Bucket,
    Drop,
    GroupAction,
    GroupType,
    HeaderFields,
    Match,
    Output,
    attach_pipeline,
)

SCENARIOS = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def _fwd(port: int):
    return (ApplyActions((Output(port),)),)


# ----------------------------------------------------------------------
# Loops
# ----------------------------------------------------------------------
class TestLoopDetection:
    @pytest.fixture
    def parallel_pair(self):
        """s1 = s2 over two parallel links, one host on each switch.

        Port map: on each switch, port 1 and 2 are the parallel links,
        port 3 the host.
        """
        topo = Topology(name="parallel-pair")
        s1 = topo.add_switch("s1")
        s2 = topo.add_switch("s2")
        topo.add_link(s1, s2)
        topo.add_link(s1, s2)
        topo.add_link(topo.add_host("h1"), s1)
        topo.add_link(topo.add_host("h2"), s2)
        for switch in (s1, s2):
            attach_pipeline(switch)
        return topo

    def test_mutual_forwarding_over_parallel_links_loops(self, parallel_pair):
        dst = IPv4Address("10.9.9.9")
        # s1 sends the class out link 2; s2 sends it back out link 1.
        # With two distinct links the in-port suppression never kicks
        # in, so the packet circulates forever.
        parallel_pair.switch("s1").pipeline.install(
            Match(ip_dst=dst), _fwd(2), priority=10
        )
        parallel_pair.switch("s2").pipeline.install(
            Match(ip_dst=dst), _fwd(1), priority=10
        )
        report = analyze_network(parallel_pair)
        loops = report.by_kind(KIND_LOOP)
        assert loops, report.summary_text()
        assert all(f.severity == SEVERITY_ERROR for f in loops)
        assert any("s1" in f.path and "s2" in f.path for f in loops)
        assert report.exit_code() == 1

    def test_single_link_hairpin_is_not_a_loop(self):
        # Over one shared link, OpenFlow suppresses output to the
        # in-port, so "s1 -> s2 -> s1" cannot physically happen.
        topo = linear(2, hosts_per_switch=1)
        for switch in topo.switches:
            attach_pipeline(switch)
        dst = IPv4Address("10.9.9.9")
        out1 = topo.egress_port("s1", "s2").number
        out2 = topo.egress_port("s2", "s1").number
        topo.switch("s1").pipeline.install(
            Match(ip_dst=dst), _fwd(out1), priority=10
        )
        topo.switch("s2").pipeline.install(
            Match(ip_dst=dst), _fwd(out2), priority=10
        )
        report = analyze_network(topo)
        assert not report.by_kind(KIND_LOOP)


# ----------------------------------------------------------------------
# Blackholes
# ----------------------------------------------------------------------
class TestBlackholeDetection:
    @pytest.fixture
    def chain3(self):
        topo = linear(3, hosts_per_switch=1)
        for switch in topo.switches:
            attach_pipeline(switch)
        return topo

    def test_mid_path_table_miss(self, chain3):
        """Rules carry the class to s3, where nothing matches: stuck."""
        dst = chain3.host("h3").ip
        for src, nxt in (("s1", "s2"), ("s2", "s3")):
            out = chain3.egress_port(src, nxt).number
            chain3.switch(src).pipeline.install(
                Match(ip_dst=dst), _fwd(out), priority=10
            )
        report = analyze_network(chain3)
        holes = report.by_kind(KIND_BLACKHOLE)
        assert holes, report.summary_text()
        assert any("miss" in f.message for f in holes)
        assert any(f.switch == "s3" for f in holes)

    def test_dangling_port(self, chain3):
        """A rule outputs to a port with no link behind it: stuck."""
        dst = IPv4Address("10.77.0.1")
        s1 = chain3.switch("s1")
        s1.add_port(9)  # never connected
        s1.pipeline.install(Match(ip_dst=dst), _fwd(9), priority=10)
        report = analyze_network(chain3)
        holes = report.by_kind(KIND_BLACKHOLE)
        assert holes
        assert any("no attached link" in f.message for f in holes)

    def test_down_link(self, chain3):
        """Rules installed before a failure go stale: stuck at the cut."""
        dst = chain3.host("h3").ip
        for src, nxt in (("s1", "s2"), ("s2", "s3")):
            out = chain3.egress_port(src, nxt).number
            chain3.switch(src).pipeline.install(
                Match(ip_dst=dst), _fwd(out), priority=10
            )
        out3 = chain3.egress_port("s3", "h3").number
        chain3.switch("s3").pipeline.install(
            Match(ip_dst=dst), _fwd(out3), priority=10
        )
        assert analyze_network(chain3).ok  # healthy before the failure
        chain3.fail_link("s2", "s3")
        report = analyze_network(chain3)
        holes = report.by_kind(KIND_BLACKHOLE)
        assert holes
        assert any("down" in f.message for f in holes)

    def test_explicit_drop_is_not_a_blackhole(self, chain3):
        """Intentional drops (blackholing policy) are not findings."""
        dst = chain3.host("h2").ip
        for switch in chain3.switches:
            switch.pipeline.install(
                Match(ip_dst=dst), (ApplyActions((Drop(),)),), priority=400
            )
        report = analyze_network(chain3)
        assert not report.by_kind(KIND_BLACKHOLE), report.summary_text()


# ----------------------------------------------------------------------
# Table anomalies: shadowed / redundant / conflicting rules
# ----------------------------------------------------------------------
class TestTableAnomalies:
    @pytest.fixture
    def pipeline(self):
        topo = linear(1, hosts_per_switch=1)
        return attach_pipeline(topo.switch("s1"))

    def test_cross_priority_shadowing(self, pipeline):
        dst = IPv4Address("10.0.0.2")
        pipeline.install(Match(ip_dst=dst), _fwd(1), priority=20)
        pipeline.install(
            Match(ip_dst=dst, tp_dst=80),
            (ApplyActions((Drop(),)),),
            priority=10,
        )
        findings = find_table_findings(pipeline)
        shadows = [f for f in findings if f.kind == KIND_SHADOWED_RULE]
        assert len(shadows) == 1
        assert "priority-20" in shadows[0].message
        assert "priority-10" in shadows[0].message

    def test_redundant_rule(self, pipeline):
        dst = IPv4Address("10.0.0.2")
        pipeline.install(Match(ip_dst=dst), _fwd(1), priority=20)
        pipeline.install(Match(ip_dst=dst, tp_dst=80), _fwd(1), priority=10)
        findings = find_table_findings(pipeline)
        assert [f.kind for f in findings] == [KIND_REDUNDANT_RULE]

    def test_same_priority_conflict(self, pipeline):
        pipeline.install(Match(tp_dst=80), _fwd(1), priority=10)
        pipeline.install(
            Match(tp_src=1000), (ApplyActions((Drop(),)),), priority=10
        )
        findings = find_table_findings(pipeline)
        assert [f.kind for f in findings] == [KIND_RULE_CONFLICT]

    def test_disjoint_rules_are_clean(self, pipeline):
        pipeline.install(
            Match(ip_dst=IPv4Address("10.0.0.1")), _fwd(1), priority=10
        )
        pipeline.install(
            Match(ip_dst=IPv4Address("10.0.0.2")), _fwd(2), priority=10
        )
        assert find_table_findings(pipeline) == []

    def test_detect_rule_conflicts_reports_shadow_kind(self, pipeline):
        dst = IPv4Address("10.0.0.2")
        pipeline.install(Match(ip_dst=dst), _fwd(1), priority=20)
        pipeline.install(
            Match(ip_dst=dst, tp_dst=80),
            (ApplyActions((Drop(),)),),
            priority=10,
        )
        conflicts = detect_rule_conflicts(pipeline)
        assert len(conflicts) == 1
        assert conflicts[0]["kind"] == "shadow"
        assert conflicts[0]["priority"] == 20
        assert conflicts[0]["shadowed_priority"] == 10

    def test_validation_shim_warns_and_delegates(self, pipeline):
        from repro.control.policy.validation import (
            detect_rule_conflicts as old_detect,
        )

        pipeline.install(Match(tp_dst=80), _fwd(1), priority=10)
        pipeline.install(
            Match(tp_src=7), (ApplyActions((Drop(),)),), priority=10
        )
        with pytest.warns(DeprecationWarning):
            findings = old_detect(pipeline)
        assert len(findings) == 1
        assert findings[0]["priority"] == 10


# ----------------------------------------------------------------------
# Walker: group fan-out
# ----------------------------------------------------------------------
class TestWalker:
    def test_select_group_forks_per_bucket(self):
        topo = linear(1, hosts_per_switch=1)
        pipeline = attach_pipeline(topo.switch("s1"))
        pipeline.groups.add(
            1,
            GroupType.SELECT,
            [Bucket((Output(5),), weight=1), Bucket((Output(6),), weight=1)],
        )
        pipeline.install(
            Match(), (ApplyActions((GroupAction(1),)),), priority=10
        )
        states = walk_pipeline(
            pipeline, HeaderFields(ip_dst=IPv4Address("10.0.0.9")), in_port=1
        )
        outputs = sorted(port for s in states for port, _ in s.outputs)
        assert outputs == [5, 6]


# ----------------------------------------------------------------------
# Clean fixtures: a healthy fabric yields zero findings
# ----------------------------------------------------------------------
class TestCleanFixtures:
    def test_linear_shortest_path_is_clean(self):
        horse = Horse(
            linear(2, hosts_per_switch=1),
            policies={"forwarding": "shortest-path"},
        )
        report = horse.analyze()
        assert report.ok
        assert report.findings == []
        assert report.classes_analyzed == 2

    def test_ixp_fabric_is_clean(self):
        fabric = build_ixp(8, seed=3)
        horse = Horse(
            fabric.topology, policies={"forwarding": "shortest-path"}
        )
        report = horse.analyze()
        assert report.ok, report.summary_text()
        assert report.classes_analyzed >= 8

    def test_all_ports_ingress_is_clean_too(self):
        """Transit-port injection must not misread the in-port output
        suppression (a hairpin) as a blackhole."""
        horse = Horse(
            linear(2, hosts_per_switch=1),
            policies={"forwarding": "shortest-path"},
        )
        horse.start_control_plane()
        report = analyze_network(horse.topology, ingress="all")
        assert report.ok, report.summary_text()
        assert report.injections == 6  # 2 edge + 1 transit port per class

    def test_ecmp_leaf_spine_is_clean(self):
        """ECMP SELECT groups fan the walk out across spines."""
        horse = Horse(
            leaf_spine(2, 2, hosts_per_leaf=2),
            policies={"load_balancing": {"mode": "ecmp"}},
        )
        report = horse.analyze()
        assert report.ok, report.summary_text()


# ----------------------------------------------------------------------
# Intent verification
# ----------------------------------------------------------------------
class TestIntentVerification:
    def test_stale_source_route_is_a_reachability_error(self):
        topo = linear(3, hosts_per_switch=1)
        horse = Horse(
            topo,
            policies={
                "forwarding": "learning",
                "source_routing": [
                    {
                        "src": "h1",
                        "dst": "h3",
                        "path": ["h1", "s1", "s2", "s3", "h3"],
                    }
                ],
            },
        )
        horse.start_control_plane()
        assert horse.analyze().ok
        topo.fail_link("s2", "s3")
        report = horse.analyze()
        kinds = {f.kind for f in report.findings}
        assert KIND_REACHABILITY in kinds
        assert KIND_BLACKHOLE in kinds
        assert report.exit_code() == 1

    def test_analyze_can_raise(self):
        topo = linear(3, hosts_per_switch=1)
        horse = Horse(
            topo,
            policies={
                "forwarding": "learning",
                "source_routing": [
                    {
                        "src": "h1",
                        "dst": "h3",
                        "path": ["h1", "s1", "s2", "s3", "h3"],
                    }
                ],
            },
        )
        horse.start_control_plane()
        topo.fail_link("s2", "s3")
        with pytest.raises(VerificationError):
            horse.analyze(raise_on_error=True)

    def test_path_deviation_warning(self):
        """Traffic delivered, but not via the declared path."""
        topo = full_mesh(3, hosts_per_switch=1)
        horse = Horse(topo, policies={"forwarding": "shortest-path"})
        horse.start_control_plane()
        detour = SourceRoutingSpec(
            src="h1", dst="h3", path=("h1", "s1", "s2", "s3", "h3")
        )
        report = analyze_network(topo, specs=[detour])
        deviations = report.by_kind(KIND_PATH_DEVIATION)
        assert len(deviations) == 1
        assert deviations[0].severity == "warning"
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_unresolvable_blackhole_target_warns(self):
        conflicts = validate_composition(
            [BlackholingSpec(target="no-such-host")], topology=None
        )
        assert any(
            c.severity == "warning" and "no-such-host" in c.message
            for c in conflicts
        )


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
class TestReport:
    def test_round_trip_and_ordering(self):
        report = AnalysisReport()
        report.extend(
            [
                Finding(kind=KIND_SHADOWED_RULE, severity="warning", message="w"),
                Finding(kind=KIND_LOOP, severity="error", message="e"),
            ]
        )
        assert [f.severity for f in report.sorted_findings()] == [
            "error",
            "warning",
        ]
        doc = report.to_dict()
        assert doc["errors"] == 1 and doc["warnings"] == 1
        assert json.dumps(doc)  # JSON-serializable

    def test_traffic_class_derivation_skips_wildcard(self):
        topo = linear(2, hosts_per_switch=1)
        pipeline = attach_pipeline(topo.switch("s1"))
        pipeline.install(Match(), _fwd(1), priority=0)  # table-miss rule
        pipeline.install(
            Match(ip_dst=IPv4Address("10.0.0.2")), _fwd(1), priority=10
        )
        classes = derive_traffic_classes(topo)
        assert len(classes) == 1
        assert classes[0].headers.ip_dst == IPv4Address("10.0.0.2")

    def test_ingress_mode_validation(self):
        topo = linear(2, hosts_per_switch=1)
        with pytest.raises(ValueError):
            DataPlaneAnalyzer(topo, ingress="bogus")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestAnalyzeCli:
    def test_clean_scenario_exits_zero(self, capsys):
        rc = main(["analyze", str(SCENARIOS / "quickstart.json")])
        assert rc == 0
        assert "verified clean" in capsys.readouterr().out

    def test_miscomposed_scenario_exits_zero_without_strict(self, capsys):
        # Findings gate the exit status only under --strict; the default
        # exits 0 so CI can merge analyze+lint reports before gating.
        rc = main(
            [
                "analyze",
                str(SCENARIOS / "miscomposed.json"),
                "--fail-link",
                "s2",
                "s3",
            ]
        )
        assert rc == 0
        assert "blackhole" in capsys.readouterr().out

    def test_miscomposed_scenario_exits_nonzero(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        rc = main(
            [
                "analyze",
                str(SCENARIOS / "miscomposed.json"),
                "--fail-link",
                "s2",
                "s3",
                "--json",
                out,
                "--strict",
            ]
        )
        assert rc == 1
        text = capsys.readouterr().out
        assert "blackhole" in text
        assert "reachability" in text
        with open(out) as handle:
            doc = json.load(handle)
        assert doc["errors"] >= 2
        assert {f["kind"] for f in doc["findings"]} >= {
            "blackhole",
            "reachability",
        }
