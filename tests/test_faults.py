"""Fault-injector tests: renewal processes, records, availability."""

import random

import pytest

from repro.control import ControlChannel, Controller
from repro.control.apps import ShortestPathApp
from repro.errors import SimulationError
from repro.flowsim import Flow, FlowLevelEngine
from repro.net.generators import full_mesh
from repro.openflow import attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import FaultProfile, LinkFaultInjector, Simulator


def build(seed=1):
    topo = full_mesh(3, hosts_per_switch=1)
    for s in topo.switches:
        attach_pipeline(s)
    sim = Simulator()
    controller = Controller()
    controller.add_app(ShortestPathApp(match_on="ip_dst"))
    channel = ControlChannel(sim, topo, controller=controller)
    engine = FlowLevelEngine(sim, topo, control=channel)
    channel.connect_engine(engine)
    controller.start()
    return topo, sim, engine


def long_flow(topo, duration=60.0):
    h1, h2 = topo.host("h1"), topo.host("h2")
    return Flow(
        headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
        src="h1",
        dst="h2",
        demand_bps=1e6,
        duration_s=duration,
    )


class TestInjector:
    def test_failures_and_repairs_occur(self):
        topo, sim, engine = build()
        injector = LinkFaultInjector(
            engine, random.Random(2), horizon_s=60.0
        )
        injector.watch(("s1", "s2"), FaultProfile(mtbf_s=5.0, mttr_s=1.0))
        injector.start()
        flow = long_flow(topo)
        engine.submit(flow)
        sim.run(until=60.0)
        assert injector.failure_count() >= 3
        repaired = [r for r in injector.records if r.repaired_at is not None]
        assert repaired
        assert all(r.downtime_s > 0 for r in repaired)

    def test_flow_survives_the_churn(self):
        topo, sim, engine = build()
        injector = LinkFaultInjector(engine, random.Random(3), horizon_s=40.0)
        injector.watch(("s1", "s2"), FaultProfile(mtbf_s=4.0, mttr_s=1.0))
        injector.start()
        flow = long_flow(topo, duration=40.0)
        engine.submit(flow)
        sim.run(until=45.0)
        engine.finish()
        # The mesh always has an alternate path, so delivery never stops.
        assert flow.delivered
        assert flow.reroutes >= 2
        assert flow.bytes_delivered == pytest.approx(1e6 * 40 / 8, rel=1e-6)

    def test_availability_accounting(self):
        topo, sim, engine = build()
        injector = LinkFaultInjector(engine, random.Random(4), horizon_s=100.0)
        injector.watch(("s1", "s2"), FaultProfile(mtbf_s=8.0, mttr_s=2.0))
        injector.start()
        # Keep the simulation alive to the horizon.
        engine.submit(long_flow(topo, duration=100.0))
        sim.run(until=100.0)
        availability = injector.availability(("s1", "s2"), until=100.0)
        # MTBF 8 / MTTR 2 -> ~80% availability; loose statistical bounds.
        assert 0.5 < availability < 0.98

    def test_determinism_by_seed(self):
        times_a = []
        times_b = []
        for sink in (times_a, times_b):
            topo, sim, engine = build()
            injector = LinkFaultInjector(
                engine, random.Random(7), horizon_s=50.0
            )
            injector.watch(("s1", "s2"), FaultProfile(mtbf_s=5.0, mttr_s=1.0))
            injector.start()
            engine.submit(long_flow(topo, duration=50.0))
            sim.run(until=50.0)
            sink.extend(r.failed_at for r in injector.records)
        assert times_a == times_b

    def test_watch_validation(self):
        topo, sim, engine = build()
        injector = LinkFaultInjector(engine, random.Random(0), horizon_s=10.0)
        with pytest.raises(Exception):
            injector.watch(("s1", "ghost"), FaultProfile(1.0, 1.0))
        injector.watch(("s1", "s2"), FaultProfile(1.0, 1.0))
        with pytest.raises(SimulationError):
            injector.watch(("s1", "s2"), FaultProfile(1.0, 1.0))

    def test_invalid_parameters(self):
        topo, sim, engine = build()
        with pytest.raises(SimulationError):
            FaultProfile(mtbf_s=0, mttr_s=1)
        with pytest.raises(SimulationError):
            LinkFaultInjector(engine, random.Random(0), horizon_s=0)

    def test_no_events_beyond_horizon(self):
        topo, sim, engine = build()
        injector = LinkFaultInjector(engine, random.Random(5), horizon_s=10.0)
        injector.watch(("s1", "s2"), FaultProfile(mtbf_s=2.0, mttr_s=0.5))
        injector.start()
        engine.submit(long_flow(topo, duration=50.0))
        sim.run(until=50.0)
        assert all(r.failed_at <= 10.0 for r in injector.records)
