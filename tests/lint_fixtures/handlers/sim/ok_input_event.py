"""EVT001 negative: churn goes through the engine's input events."""


class ChaosEvent:
    def __init__(self, engine, a, b):
        self.engine = engine
        self.a = a
        self.b = b

    def fire(self, sim):
        self.engine.fail_link_at(sim.now, self.a, self.b)


class Engine:
    def on_link_state(self, sim, a, b, up):
        # The documented mutation point owns the bookkeeping.
        if up:
            self.topology.restore_link(a, b)
        else:
            self.topology.fail_link(a, b)

    def fail_link_at(self, when, a, b):
        return (when, a, b)
