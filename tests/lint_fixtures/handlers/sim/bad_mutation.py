"""EVT001 positive: kernel callbacks mutating topology directly."""


class ChaosEvent:
    def __init__(self, topology, a, b):
        self.topology = topology
        self.a = a
        self.b = b

    def fire(self, sim):
        self.topology.fail_link(self.a, self.b)


def churn_tick(sim, topology):
    topology.restore_link("s1", "s2")
