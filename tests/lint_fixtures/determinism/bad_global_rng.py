"""DET002 positive: draws from the process-global RNG."""

import random

import numpy as np


def jitter():
    return random.random() + np.random.rand()
