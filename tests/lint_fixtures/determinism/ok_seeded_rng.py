"""DET002 negative: named, explicitly seeded streams."""

import random

import numpy as np


def make_streams(seed):
    return random.Random(seed), np.random.default_rng(seed)
