"""DET001 negative: time comes from the kernel clock."""


def stamp_event(sim, event):
    event.time = sim.now
    return event
