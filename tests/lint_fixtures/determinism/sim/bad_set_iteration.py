"""DET003 positive: hash order leaks into event/solver ordering."""


def reschedule(sim, flow_ids: set):
    for flow_id in flow_ids:
        sim.schedule(flow_id)


class Engine:
    def __init__(self):
        self.dirty = set()

    def drain(self, sim):
        for flow_id in self.dirty:
            sim.schedule(flow_id)
        rates = [resolve(link) for link in {1, 2, 3}]
        return rates


def resolve(link):
    return link
