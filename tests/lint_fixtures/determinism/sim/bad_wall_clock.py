"""DET001 positive: simulation state derived from the host clock."""

import time as _time
from datetime import datetime


def stamp_event(event):
    event.time = _time.time()  # wall clock into sim state
    event.created = datetime.now()
    return event
