"""DET003 negative: sorted / order-insensitive consumption of sets."""


def reschedule(sim, flow_ids: set):
    for flow_id in sorted(flow_ids):
        sim.schedule(flow_id)


class Engine:
    def __init__(self):
        self.dirty = set()

    def drain(self, sim):
        worst = max(flow_id for flow_id in self.dirty)
        return worst
