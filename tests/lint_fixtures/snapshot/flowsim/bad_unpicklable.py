"""SNAP001 positive: unpicklable attributes on a snapshot-graph class."""

import threading


class Engine:
    def __init__(self, path):
        self.on_done = lambda flow: None
        self.log = open(path, "a")
        self.lock = threading.Lock()
