"""SNAP001 negative: the class owns its pickling story."""


class TraceSink:
    def __init__(self, path):
        self.path = path
        self.handle = open(path, "a")

    def __getstate__(self):
        state = dict(self.__dict__)
        state["handle"] = None
        return state
