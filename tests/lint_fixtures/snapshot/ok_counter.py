"""SNAP002 negative: the counter carries reset/advance watermarks."""

import itertools

_IDS = itertools.count(1)
_LAST = 0


def next_id():
    global _LAST
    _LAST = next(_IDS)
    return _LAST


def reset_ids():
    global _IDS, _LAST
    _IDS = itertools.count(1)
    _LAST = 0


def advance_ids(minimum):
    global _IDS, _LAST
    start = max(_LAST, minimum) + 1
    _IDS = itertools.count(start)
    _LAST = start - 1
