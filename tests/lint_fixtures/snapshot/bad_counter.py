"""SNAP002 positive: an id counter without watermark plumbing."""

import itertools

_IDS = itertools.count(1)


def next_id():
    return next(_IDS)
