"""TEL001 negative: every emission is dominated by `is not None`."""


class Engine:
    def __init__(self, trace_bus, profiler):
        self.trace_bus = trace_bus
        self.profiler = profiler

    def step(self, flow):
        trace_bus = self.trace_bus
        if trace_bus is not None:
            trace_bus.emit("flow_step", flow_id=flow)
        profiler = self.profiler
        if profiler is None:
            return
        profiler.add("step", 0.0)
