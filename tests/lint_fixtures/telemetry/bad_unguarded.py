"""TEL001 positive: emission without the zero-cost guard."""


class Engine:
    def __init__(self, trace_bus, profiler):
        self.trace_bus = trace_bus
        self.profiler = profiler

    def step(self, flow):
        self.trace_bus.emit("flow_step", flow_id=flow)
        self.profiler.add("step", 0.0)
