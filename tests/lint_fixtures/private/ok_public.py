"""PRIV001/PRIV002 negative: public members and self access only."""

from collections import Counter


class Channel:
    def __init__(self):
        self._port_stats = Counter()

    def port_stats(self):
        return dict(self._port_stats)


def peek(channel):
    return channel.port_stats()
