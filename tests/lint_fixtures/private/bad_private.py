"""PRIV001/PRIV002 positive: cross-module private reach-through."""

from collections import _count_elements


def peek(channel):
    return channel._port_stats
