"""Edge-case coverage: queue/link corners, kernel helpers, exports."""

import pytest

from repro.flowsim import Flow, FlowState
from repro.net import Topology
from repro.openflow import HeaderFields, attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.pktsim import PacketLevelEngine, Packet
from repro.sim import CallbackEvent, Simulator


class TestKernelHelpers:
    def test_drain_schedules_batch(self):
        sim = Simulator()
        hits = []
        events = [
            CallbackEvent(float(t), lambda s, t=t: hits.append(t))
            for t in (3, 1, 2)
        ]
        sim.drain(events)
        sim.run()
        assert hits == [1, 2, 3]

    def test_reset_rejected_while_running(self):
        sim = Simulator()

        def boom(s):
            with pytest.raises(Exception):
                s.reset()

        sim.call_at(1.0, boom)
        sim.run()

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested(s):
            with pytest.raises(Exception):
                s.run()

        sim.call_at(1.0, nested)
        sim.run()


class TestPortStats:
    def test_reset_stats(self, line2):
        port = line2.host("h1").uplink_port
        port.tx_bytes = 100
        port.rx_packets = 5
        port.reset_stats()
        assert port.stats()["tx_bytes"] == 0
        assert port.stats()["rx_packets"] == 0

    def test_port_stats_shape(self, line2):
        stats = line2.host("h1").uplink_port.stats()
        assert set(stats) == {
            "port_no",
            "rx_packets",
            "tx_packets",
            "rx_bytes",
            "tx_bytes",
            "rx_dropped",
            "tx_dropped",
        }


class TestPacketEngineCorners:
    def test_duration_flow_stops_sending_at_end(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        h1, h2 = line2.host("h1"), line2.host("h2")
        flow = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
            src="h1", dst="h2", demand_bps=2e6, duration_s=1.0,
            elastic=False,
        )
        engine.submit(flow)
        sim.run(until=5.0)
        assert flow.state is FlowState.ENDED
        # Nothing sent beyond the window (2 Mb/s x 1 s = 250 KB).
        assert flow.bytes_sent <= 2e6 * 1.0 / 8 * 1.02

    def test_packet_lost_when_link_fails_midflight(self, line2):
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        uplink = line2.host("h1").uplink_port
        direction = uplink.link.direction_from(uplink)
        queue = engine.queue_for(direction)
        arrived = []
        queue.on_arrival = lambda pkt, port: arrived.append(pkt)
        queue.enqueue(
            Packet(headers=HeaderFields(), size_bytes=12500, flow_id=1,
                   src="h1", dst="h2")
        )
        # 12500 B at 10 Mb/s = 10 ms tx; kill the link during flight.
        sim.call_at(0.005, lambda s: uplink.link.set_up(False))
        sim.run(until=1.0)
        assert arrived == []

    def test_enqueue_on_down_link_drops(self, line2):
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        uplink = line2.host("h1").uplink_port
        uplink.link.set_up(False)
        queue = engine.queue_for(uplink.link.direction_from(uplink))
        ok = queue.enqueue(
            Packet(headers=HeaderFields(), size_bytes=100, flow_id=1,
                   src="h1", dst="h2")
        )
        assert not ok
        assert queue.dropped == 1

    def test_packet_validation(self):
        with pytest.raises(ValueError):
            Packet(headers=HeaderFields(), size_bytes=0, flow_id=1,
                   src="a", dst="b")

    def test_aimd_retransmits_lost_bytes(self, line2, install_path):
        """Congestion losses are retransmitted: delivered == size."""
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2, queue_capacity_packets=5)
        h1, h2 = line2.host("h1"), line2.host("h2")
        flow = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
            src="h1", dst="h2", demand_bps=50e6, size_bytes=400_000,
        )
        engine.submit(flow)
        sim.run(until=60.0)
        assert flow.state is FlowState.COMPLETED
        assert flow.bytes_delivered >= 400_000
        # Losses happened (tiny queue) and were made up for.
        assert engine.stats["drops_congestion"] > 0


class TestExportsCorners:
    def test_flow_row_for_unfinished_flow(self, line2):
        from repro.stats import flow_row

        h1, h2 = line2.host("h1"), line2.host("h2")
        flow = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1, 2),
            src="h1", dst="h2", demand_bps=1e6, size_bytes=100,
        )
        row = flow_row(flow)
        assert row["state"] == "pending"
        assert row["fct_s"] is None
        assert row["terminal"] is None

    def test_summary_text_includes_notes(self, line2):
        from repro import Horse
        from repro.stats import summary_text

        horse = Horse(line2, policies={})  # triggers the default note
        result = horse.run(until=0.1)
        text = summary_text(result)
        assert "notes" in text
        assert "shortest-path" in text


class TestTopologyCorners:
    def test_direction_key_is_stable(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        link = topo.add_link(a, b)
        d = link.direction_from(a.port(1))
        assert d.key == ("a", 1, "b", 1)

    def test_pipeline_table_size_cap_via_attach(self):
        topo = Topology()
        switch = topo.add_switch("s1")
        pipeline = attach_pipeline(switch, table_size=1)
        from repro.openflow import ApplyActions, Match, Output
        from repro.errors import TableFullError

        pipeline.install(Match(tp_dst=1), (ApplyActions((Output(1),)),))
        with pytest.raises(TableFullError):
            pipeline.install(Match(tp_dst=2), (ApplyActions((Output(1),)),))
