"""Controller app tests: learning, shortest path, ECMP, policies."""

import pytest

from repro.control import ControlChannel, Controller
from repro.control.apps import (
    AppPeeringApp,
    BlackholeApp,
    EcmpLoadBalancerApp,
    L2LearningApp,
    PeeringRule,
    RateLimit,
    RateLimiterApp,
    ShortestPathApp,
    SourceRoute,
    SourceRoutingApp,
    app_port,
)
from repro.errors import ControlPlaneError
from repro.flowsim import Flow, FlowLevelEngine, FlowState, Terminal
from repro.net import IPv4Address, IPv4Network
from repro.net.generators import fat_tree, tree
from repro.openflow import Match, attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator


def wire(topo, *apps, num_tables=2):
    """Attach pipelines, build controller+channel+engine, start apps."""
    for switch in topo.switches:
        if switch.pipeline is None:
            attach_pipeline(switch, num_tables=num_tables)
    sim = Simulator()
    controller = Controller()
    for app in apps:
        controller.add_app(app)
    channel = ControlChannel(sim, topo, controller=controller)
    engine = FlowLevelEngine(sim, topo, control=channel)
    channel.connect_engine(engine)
    controller.start()
    return sim, controller, channel, engine


def make_flow(topo, src, dst, demand=1e6, size=100_000, start=0.0,
              sport=1000, dport=80):
    s, d = topo.host(src), topo.host(dst)
    return Flow(
        headers=tcp_flow(s.ip, d.ip, sport, dport, eth_src=s.mac, eth_dst=d.mac),
        src=src,
        dst=dst,
        demand_bps=demand,
        size_bytes=size,
        start_time=start,
    )


class TestL2Learning:
    def test_first_flow_floods_then_learns(self):
        topo = tree(2, 2)
        sim, controller, channel, engine = wire(topo, L2LearningApp())
        forward = make_flow(topo, "h1", "h4")
        engine.submit(forward)
        sim.run()
        assert forward.delivered
        # Reverse traffic uses learned state: fewer packet-ins than hops.
        before = engine.stats["packet_ins"]
        back = make_flow(topo, "h4", "h1", sport=80, dport=1000,
                         start=sim.now + 0.1)
        # restart: submit on same sim
        engine.submit(back)
        sim.run()
        assert back.delivered
        app = controller.app("l2-learning")
        assert len(app.mac_table) > 0

    def test_learning_rules_installed_after_reverse_traffic(self):
        topo = tree(2, 2)
        sim, controller, channel, engine = wire(topo, L2LearningApp())
        engine.submit(make_flow(topo, "h1", "h4"))
        engine.submit(make_flow(topo, "h4", "h1", sport=80, dport=1000,
                                start=1.0))
        sim.run()
        # One-way traffic alone only floods (dst unknown); once h4 talks
        # back, both MACs are learned and direct rules get installed.
        assert controller.rule_count() > len(topo.switches)

    def test_port_down_purges_learning(self):
        topo = tree(2, 2)
        sim, controller, channel, engine = wire(topo, L2LearningApp())
        engine.submit(make_flow(topo, "h1", "h4"))
        sim.run()
        app = controller.app("l2-learning")
        assert app.mac_table
        # Kill every edge link; learning for those ports must go.
        engine.fail_link_at(sim.now + 0.1, "s2", "s1")
        sim.run()
        h4_mac = topo.host("h4").mac
        s1 = topo.switch("s1")
        # s1's entry toward h4 went through the failed port and is purged.
        assert (s1.dpid, h4_mac) not in app.mac_table


class TestShortestPath:
    def test_all_pairs_delivered_on_fat_tree(self):
        topo = fat_tree(4)
        sim, controller, channel, engine = wire(
            topo, ShortestPathApp(match_on="ip_dst")
        )
        flows = [
            make_flow(topo, "h1", "h16"),
            make_flow(topo, "h5", "h2", sport=1001),
            make_flow(topo, "h9", "h12", sport=1002),
        ]
        engine.submit_all(flows)
        sim.run()
        assert all(f.delivered for f in flows)
        assert all(f.state is FlowState.COMPLETED for f in flows)

    def test_rule_count_is_hosts_times_switches(self):
        topo = fat_tree(4)
        sim, controller, channel, engine = wire(
            topo, ShortestPathApp(match_on="ip_dst")
        )
        # Every switch can reach every host in a fat-tree.
        assert controller.rule_count() == 16 * 20

    def test_invalid_match_on(self):
        with pytest.raises(ControlPlaneError):
            ShortestPathApp(match_on="bogus")

    def test_stop_removes_rules(self):
        topo = tree(2, 2)
        sim, controller, channel, engine = wire(
            topo, ShortestPathApp(match_on="ip_dst")
        )
        assert controller.rule_count() > 0
        controller.remove_app("shortest-path")
        assert controller.rule_count() == 0


class TestEcmp:
    def test_groups_created_on_multipath_switches(self):
        topo = fat_tree(4)
        sim, controller, channel, engine = wire(
            topo, EcmpLoadBalancerApp(match_on="ip_dst")
        )
        groups = sum(
            len(s.pipeline.groups) for s in topo.switches
        )
        assert groups > 0

    def test_flows_spread_across_core_paths(self):
        topo = fat_tree(4)
        sim, controller, channel, engine = wire(
            topo, EcmpLoadBalancerApp(match_on="ip_dst")
        )
        flows = [
            make_flow(topo, "h1", "h16", sport=1000 + i, size=10_000)
            for i in range(40)
        ]
        engine.submit_all(flows)
        sim.run()
        assert all(f.delivered for f in flows)
        cores_used = set()
        for f in flows:
            for dpid, _, _ in f.route.switch_hops:
                name = topo.switch_by_dpid(dpid).name
                if name.startswith("core"):
                    cores_used.add(name)
        assert len(cores_used) >= 2  # hashing actually diversifies

    def test_same_flow_keys_stick_to_one_path(self):
        topo = fat_tree(4)
        sim, controller, channel, engine = wire(
            topo, EcmpLoadBalancerApp(match_on="ip_dst")
        )
        a = make_flow(topo, "h1", "h16", sport=1000)
        engine.submit(a)
        sim.run()
        path_a = [hop[0] for hop in a.route.switch_hops]
        b = make_flow(topo, "h1", "h16", sport=1000, start=sim.now + 1)
        engine.submit(b)
        sim.run()
        assert [hop[0] for hop in b.route.switch_hops] == path_a


class TestBlackhole:
    def test_blackhole_by_ip(self):
        topo = tree(2, 2)
        sim, controller, channel, engine = wire(
            topo,
            BlackholeApp(targets=[topo.host("h4").ip]),
            ShortestPathApp(match_on="ip_dst"),
        )
        victim = make_flow(topo, "h1", "h4")
        innocent = make_flow(topo, "h1", "h3", sport=1001)
        engine.submit_all([victim, innocent])
        sim.run(until=30.0)
        assert victim.route.terminal is Terminal.BLACKHOLED
        assert innocent.delivered

    def test_add_and_remove_target_at_runtime(self):
        topo = tree(2, 2)
        app = BlackholeApp()
        sim, controller, channel, engine = wire(
            topo, app, ShortestPathApp(match_on="ip_dst")
        )
        flow = make_flow(topo, "h1", "h4", demand=1e6, size=None)
        flow.duration_s = 10.0
        engine.submit(flow)
        sim.call_at(2.0, lambda s: app.add_target(topo.host("h4").ip))
        sim.call_at(6.0, lambda s: app.remove_target(topo.host("h4").ip))
        sim.run()
        engine.finish()
        assert flow.reroutes >= 2  # blackholed then restored
        assert flow.delivered  # ends delivered

    def test_prefix_blackhole(self):
        topo = tree(2, 2)
        prefix = IPv4Network("10.0.0.0/30")  # covers h1..h3 addresses
        sim, controller, channel, engine = wire(
            topo,
            BlackholeApp(targets=[prefix]),
            ShortestPathApp(match_on="ip_dst"),
        )
        flow = make_flow(topo, "h4", "h2", sport=1001)
        engine.submit(flow)
        sim.run(until=10.0)
        assert flow.route.terminal is Terminal.BLACKHOLED

    def test_direction_src(self):
        topo = tree(2, 2)
        sim, controller, channel, engine = wire(
            topo,
            BlackholeApp(targets=[topo.host("h1").ip], direction="src"),
            ShortestPathApp(match_on="ip_dst"),
        )
        out = make_flow(topo, "h1", "h4")
        into = make_flow(topo, "h4", "h1", sport=1001)
        engine.submit_all([out, into])
        sim.run(until=30.0)
        assert out.route.terminal is Terminal.BLACKHOLED
        assert into.delivered

    def test_remove_unknown_target_raises(self):
        topo = tree(2, 2)
        app = BlackholeApp()
        wire(topo, app)
        with pytest.raises(ControlPlaneError):
            app.remove_target(IPv4Address("9.9.9.9"))


class TestRateLimiter:
    def test_limit_caps_flow(self):
        topo = tree(2, 2)
        limit = RateLimit(
            match=Match(ip_src=topo.host("h1").ip), rate_bps=2e6, scope=["s2"]
        )
        app = RateLimiterApp(limits=[limit])
        app.table_id = 0
        app.next_table = 1
        forwarding = ShortestPathApp(match_on="ip_dst")
        forwarding.table_id = 1
        sim, controller, channel, engine = wire(topo, app, forwarding)
        flow = make_flow(topo, "h1", "h4", demand=8e6, size=1_000_000)
        engine.submit(flow)
        sim.run()
        # 1 MB at 2 Mb/s = 4 s.
        assert flow.end_time == pytest.approx(4.0)

    def test_standalone_single_table_raises(self):
        topo = tree(2, 2)
        for s in topo.switches:
            attach_pipeline(s, num_tables=1)
        app = RateLimiterApp(limits=[RateLimit(match=Match(), rate_bps=1e6)])
        sim = Simulator()
        controller = Controller()
        controller.add_app(app)
        ControlChannel(sim, topo, controller=controller)
        with pytest.raises(ControlPlaneError):
            controller.start()

    def test_invalid_rate(self):
        with pytest.raises(ControlPlaneError):
            RateLimit(match=Match(), rate_bps=0)


class TestAppPeeringAndSourceRouting:
    def test_app_port_resolution(self):
        assert app_port("http") == 80
        assert app_port(8080) == 8080
        with pytest.raises(ControlPlaneError):
            app_port("gopher")
        with pytest.raises(ControlPlaneError):
            app_port(0)

    def test_peering_overrides_only_matching_app(self):
        from repro.net.generators import full_mesh

        topo = full_mesh(3, hosts_per_switch=1)
        peering = AppPeeringApp(
            rules=[
                PeeringRule(
                    src_host="h1",
                    dst_host="h2",
                    app="http",
                    path=["h1", "s1", "s3", "s2", "h2"],
                )
            ]
        )
        sim, controller, channel, engine = wire(
            topo, peering, ShortestPathApp(match_on="ip_dst")
        )
        http = make_flow(topo, "h1", "h2", dport=80)
        ssh = make_flow(topo, "h1", "h2", sport=1001, dport=22)
        engine.submit_all([http, ssh])
        sim.run()
        assert http.delivered and ssh.delivered
        assert len(http.route.directions) == 4  # detour via s3
        assert len(ssh.route.directions) == 3  # direct

    def test_source_route_pins_pair(self):
        from repro.net.generators import full_mesh

        topo = full_mesh(3, hosts_per_switch=1)
        routing = SourceRoutingApp(
            routes=[
                SourceRoute("h1", "h2", ["h1", "s1", "s3", "s2", "h2"])
            ]
        )
        sim, controller, channel, engine = wire(
            topo, routing, ShortestPathApp(match_on="ip_dst")
        )
        pinned = make_flow(topo, "h1", "h2")
        other = make_flow(topo, "h2", "h1", sport=1001)
        engine.submit_all([pinned, other])
        sim.run()
        assert len(pinned.route.directions) == 4  # follows the pin
        assert len(other.route.directions) == 3  # reverse is unpinned

    def test_source_route_validation(self):
        with pytest.raises(ControlPlaneError):
            SourceRoute("h1", "h2", ["h1", "h2"])  # no switch

    def test_disconnected_path_rejected_at_install(self):
        from repro.net.generators import full_mesh

        topo = full_mesh(3, hosts_per_switch=1)
        routing = SourceRoutingApp(
            routes=[SourceRoute("h1", "h2", ["h1", "s1", "h2"])]
        )
        for s in topo.switches:
            attach_pipeline(s)
        sim = Simulator()
        controller = Controller()
        controller.add_app(routing)
        ControlChannel(sim, topo, controller=controller)
        with pytest.raises(Exception):
            controller.start()


class TestControllerCore:
    def test_duplicate_app_name_rejected(self):
        controller = Controller()
        controller.add_app(L2LearningApp())
        with pytest.raises(ControlPlaneError):
            controller.add_app(L2LearningApp())

    def test_unknown_app_lookup(self):
        with pytest.raises(ControlPlaneError):
            Controller().app("ghost")

    def test_start_without_channel_raises(self):
        with pytest.raises(ControlPlaneError):
            Controller().start()

    def test_app_cookies_are_distinct(self):
        controller = Controller()
        a = controller.add_app(L2LearningApp(name="a"))
        b = controller.add_app(L2LearningApp(name="b"))
        assert a.cookie != b.cookie
