"""Packet-level baseline tests: delivery, queues, AIMD, CBR, meters."""

import pytest

from repro.flowsim import FlowState
from repro.openflow import (
    ApplyActions,
    Drop,
    DropBand,
    GotoTable,
    Match,
    MeterInstruction,
    Output,
)
from repro.pktsim import PacketLevelEngine, Packet
from repro.pktsim.queues import OutputQueue
from repro.sim import Simulator

from workloads import make_flow


class TestDelivery:
    def test_single_tcp_flow_completes(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=8e6, size=500_000)
        engine.submit(flow)
        sim.run(until=30.0)
        assert flow.state is FlowState.COMPLETED
        assert flow.bytes_delivered >= 500_000
        # Ideal time at 10 Mb/s is 0.4 s; slow start costs some extra.
        assert 0.4 <= flow.flow_completion_time < 3.0

    def test_fct_close_to_ideal_for_uncongested_flow(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=8e6, size=2_000_000)
        engine.submit(flow)
        sim.run(until=60.0)
        ideal = 2_000_000 * 8 / 10e6
        assert flow.flow_completion_time == pytest.approx(ideal, rel=0.5)

    def test_cbr_flow_sends_at_demand(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, duration=2.0,
                         elastic=False)
        engine.submit(flow)
        sim.run(until=10.0)
        expected = 4e6 * 2 / 8
        assert flow.bytes_sent == pytest.approx(expected, rel=0.02)
        assert flow.bytes_delivered == pytest.approx(expected, rel=0.02)

    def test_cbr_volume_flow_completes_on_send(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, size=100_000,
                         elastic=False)
        engine.submit(flow)
        sim.run(until=10.0)
        assert flow.state is FlowState.COMPLETED

    def test_no_rules_packets_policy_dropped(self, line2):
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=1e6, duration=0.1,
                         elastic=False)
        engine.submit(flow)
        sim.run(until=1.0)
        assert engine.stats["drops_policy"] > 0
        assert flow.bytes_delivered == 0


class TestCongestion:
    def test_two_tcp_flows_share_roughly_fairly(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        f1 = make_flow(line2, "h1", "h2", demand=10e6, size=2_000_000)
        f2 = make_flow(line2, "h1", "h2", demand=10e6, size=2_000_000,
                       sport=1001)
        engine.submit_all([f1, f2])
        sim.run(until=60.0)
        t1 = f1.bytes_delivered * 8 / f1.flow_completion_time
        t2 = f2.bytes_delivered * 8 / f2.flow_completion_time
        assert 0.3 < t1 / t2 < 3.0  # AIMD approximate fairness
        assert engine.stats["drops_congestion"] > 0

    def test_cbr_overload_drops_at_queue(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=20e6, duration=1.0,
                         elastic=False)
        engine.submit(flow)
        sim.run(until=5.0)
        # ~half the offered load exceeds the 10 Mb/s line.
        assert engine.stats["drops_congestion"] > 0
        assert flow.bytes_delivered < flow.bytes_sent
        assert flow.bytes_delivered == pytest.approx(10e6 * 1 / 8, rel=0.15)


class TestPolicies:
    def test_blackhole_gives_no_loss_feedback(self, line2, install_path):
        install_path(line2, "h1", "h2")
        line2.switch("s2").pipeline.install(
            Match(), (ApplyActions((Drop(),)),), priority=100
        )
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=8e6, size=1_000_000)
        engine.submit(flow)
        sim.run(until=5.0)
        # TCP stalls after its initial window: few packets, zero delivered.
        assert flow.bytes_delivered == 0
        assert engine.stats["drops_policy"] > 0
        assert flow.state is FlowState.ACTIVE  # never completes

    def test_meter_token_bucket_drops(self, line2, install_path):
        pipeline = line2.switch("s1").pipeline
        pipeline.meters.add(1, [DropBand(rate_bps=2e6, burst_bits=3e4)])
        pipeline.install(Match(), (GotoTable(1),), priority=0, table_id=0)
        pipeline.install(
            Match(ip_dst=line2.host("h2").ip),
            (MeterInstruction(1), GotoTable(1)),
            priority=10,
            table_id=0,
        )
        line2.switch("s2").pipeline.install(
            Match(), (GotoTable(1),), priority=0, table_id=0
        )
        dst = line2.host("h2")
        for name, nxt in (("s1", "s2"), ("s2", "h2")):
            out = line2.egress_port(name, nxt)
            line2.switch(name).pipeline.install(
                Match(ip_dst=dst.ip),
                (ApplyActions((Output(out.number),)),),
                priority=10,
                table_id=1,
            )
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=8e6, duration=2.0,
                         elastic=False)
        engine.submit(flow)
        sim.run(until=10.0)
        assert engine.stats["drops_meter"] > 0
        # Goodput capped near the 2 Mb/s meter rate.
        assert flow.bytes_delivered == pytest.approx(2e6 * 2 / 8, rel=0.25)


class TestQueueMechanics:
    def test_queue_serializes_at_line_rate(self, line2):
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        uplink = line2.host("h1").uplink_port
        direction = uplink.link.direction_from(uplink)
        queue = engine.queue_for(direction)
        delivered = []
        queue.on_arrival = lambda pkt, port: delivered.append(sim.now)
        from repro.openflow import HeaderFields

        for i in range(3):
            queue.enqueue(Packet(headers=HeaderFields(), size_bytes=12500,
                                 flow_id=1, src="h1", dst="h2"))
        sim.run()
        # 12500 B at 10 Mb/s = 10 ms each, back to back.
        assert delivered == pytest.approx([0.01, 0.02, 0.03], rel=1e-3)

    def test_queue_tail_drop(self, line2):
        from repro.openflow import HeaderFields

        sim = Simulator()
        engine = PacketLevelEngine(sim, line2, queue_capacity_packets=2)
        uplink = line2.host("h1").uplink_port
        direction = uplink.link.direction_from(uplink)
        queue = engine.queue_for(direction)
        results = [
            queue.enqueue(Packet(headers=HeaderFields(), size_bytes=1500,
                                 flow_id=1, src="h1", dst="h2"))
            for _ in range(5)
        ]
        # First starts transmitting, two queue, rest dropped.
        assert results == [True, True, True, False, False]
        assert queue.dropped == 2
        assert direction.src_port.tx_dropped == 2

    def test_queue_utilization_measure(self, line2):
        from repro.openflow import HeaderFields

        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        uplink = line2.host("h1").uplink_port
        queue = engine.queue_for(uplink.link.direction_from(uplink))
        queue.enqueue(Packet(headers=HeaderFields(), size_bytes=12500,
                             flow_id=1, src="h1", dst="h2"))
        sim.run()
        # Busy 10 ms out of 10 ms+delay total.
        assert queue.utilization(now=0.01) == pytest.approx(1.0, rel=1e-3)
        assert 0.4 < queue.utilization(now=0.02) < 0.6

    def test_submit_validation(self, line2):
        sim = Simulator()
        engine = PacketLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=1e6, size=1000)
        engine.submit(flow)
        with pytest.raises(Exception):
            engine.submit(flow)
