"""Shared fixtures: small topologies with attached pipelines."""

from __future__ import annotations

import random

import pytest

from repro.net.generators import fat_tree, linear, single_switch
from repro.openflow import ApplyActions, Match, Output, attach_pipeline
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def line2():
    """h1 - s1 - s2 - h2, 10 Mbps links, pipelines attached."""
    topo = linear(2, hosts_per_switch=1, capacity_bps=10e6)
    for switch in topo.switches:
        attach_pipeline(switch, num_tables=2)
    return topo


@pytest.fixture
def star4():
    """4 hosts on one switch, 100 Mbps links."""
    topo = single_switch(4, capacity_bps=100e6)
    attach_pipeline(topo.switch("s1"), num_tables=2)
    return topo


@pytest.fixture
def fattree4():
    """k=4 fat-tree with pipelines."""
    topo = fat_tree(4)
    for switch in topo.switches:
        attach_pipeline(switch, num_tables=2)
    return topo


def install_ip_path(topo, src: str, dst: str, priority: int = 10) -> None:
    """Install static ip_dst rules along the shortest path src->dst."""
    path = topo.shortest_path(src, dst)
    dst_host = topo.host(dst)
    for i in range(1, len(path) - 1):
        switch = path[i]
        out = topo.egress_port(switch, path[i + 1])
        switch.pipeline.install(
            Match(ip_dst=dst_host.ip),
            (ApplyActions((Output(out.number),)),),
            priority=priority,
        )


@pytest.fixture
def install_path():
    return install_ip_path
