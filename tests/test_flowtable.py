"""Flow table tests: priorities, FlowMod semantics, timeouts, counters."""

import pytest

from repro.errors import TableFullError
from repro.net import IPv4Address, IPv4Network
from repro.openflow import (
    ApplyActions,
    Drop,
    FlowEntry,
    FlowTable,
    HeaderFields,
    Match,
    Output,
)


def entry(priority=0, instructions=None, **match_fields):
    return FlowEntry(
        match=Match(**match_fields),
        priority=priority,
        instructions=instructions or (ApplyActions((Output(1),)),),
    )


def header(ip_dst="10.0.0.1"):
    return HeaderFields(ip_dst=IPv4Address(ip_dst))


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        low = entry(priority=1)
        high = entry(priority=10, ip_dst=IPv4Address("10.0.0.1"))
        table.add(low)
        table.add(high)
        assert table.lookup(header()) is high
        assert table.lookup(header("10.0.0.2")) is low

    def test_insertion_order_breaks_priority_ties(self):
        table = FlowTable()
        first = entry(priority=5, ip_dst=IPv4Address("10.0.0.1"))
        second = entry(priority=5)  # overlapping but distinct match
        table.add(first)
        table.add(second)
        assert table.lookup(header()) is first

    def test_miss_returns_none_and_counts(self):
        table = FlowTable()
        assert table.lookup(header()) is None
        table.add(entry(ip_dst=IPv4Address("10.9.9.9")))
        assert table.lookup(header()) is None
        stats = table.stats()
        assert stats["lookup_count"] == 2
        assert stats["matched_count"] == 0

    def test_in_port_lookup(self):
        table = FlowTable()
        table.add(entry(priority=5, in_port=2))
        assert table.lookup(header(), in_port=2) is not None
        assert table.lookup(header(), in_port=3) is None


class TestAdd:
    def test_identical_match_and_priority_replaces(self):
        table = FlowTable()
        old = entry(priority=5, ip_dst=IPv4Address("10.0.0.1"))
        new = FlowEntry(
            match=Match(ip_dst=IPv4Address("10.0.0.1")),
            priority=5,
            instructions=(ApplyActions((Drop(),)),),
        )
        table.add(old)
        table.add(new)
        assert len(table) == 1
        assert table.lookup(header()) is new

    def test_check_overlap_rejects_same_priority_overlap(self):
        table = FlowTable()
        table.add(entry(priority=5, ip_dst=IPv4Network("10.0.0.0/8")))
        with pytest.raises(TableFullError):
            table.add(
                entry(priority=5, ip_dst=IPv4Network("10.0.0.0/24")),
                check_overlap=True,
            )
        # Different priority never conflicts.
        table.add(
            entry(priority=6, ip_dst=IPv4Network("10.0.0.0/24")),
            check_overlap=True,
        )

    def test_table_capacity_enforced(self):
        table = FlowTable(max_size=2)
        table.add(entry(priority=1))
        table.add(entry(priority=2, tp_dst=80))
        with pytest.raises(TableFullError):
            table.add(entry(priority=3, tp_dst=443))
        # Replacement still allowed at capacity.
        table.add(entry(priority=1))
        assert len(table) == 2


class TestModifyDelete:
    def test_loose_delete_uses_subsumption(self):
        table = FlowTable()
        table.add(entry(priority=1, ip_dst=IPv4Address("10.0.0.1")))
        table.add(entry(priority=2, ip_dst=IPv4Address("10.0.0.2")))
        table.add(entry(priority=3, ip_dst=IPv4Address("11.0.0.1")))
        removed = table.delete(Match(ip_dst=IPv4Network("10.0.0.0/8")))
        assert len(removed) == 2
        assert len(table) == 1

    def test_strict_delete_requires_exact_match(self):
        table = FlowTable()
        kept = entry(priority=1, ip_dst=IPv4Address("10.0.0.1"))
        table.add(kept)
        assert table.delete(Match(), strict=True) == []
        removed = table.delete(
            Match(ip_dst=IPv4Address("10.0.0.1")), priority=1, strict=True
        )
        assert removed == [kept]

    def test_delete_filtered_by_cookie(self):
        table = FlowTable()
        a = entry(priority=1)
        a.cookie = 7
        b = entry(priority=2, tp_dst=80)
        b.cookie = 8
        table.add(a)
        table.add(b)
        removed = table.delete(Match(), cookie=7)
        assert removed == [a]
        assert len(table) == 1

    def test_modify_rewrites_instructions_keeps_counters(self):
        table = FlowTable()
        e = entry(priority=1)
        table.add(e)
        e.account(100, 1)
        table.modify(Match(), (ApplyActions((Drop(),)),))
        assert e.instructions == (ApplyActions((Drop(),)),)
        assert e.byte_count == 100


class TestTimeouts:
    def test_hard_timeout_expires(self):
        table = FlowTable()
        e = FlowEntry(match=Match(), priority=0, hard_timeout=5.0, install_time=0.0)
        table.add(e)
        assert table.expire(now=4.9) == []
        expired = table.expire(now=5.0)
        assert expired == [(e, "hard")]
        assert len(table) == 0

    def test_idle_timeout_resets_on_use(self):
        table = FlowTable()
        e = FlowEntry(match=Match(), priority=0, idle_timeout=2.0, install_time=0.0)
        table.add(e)
        e.account(10, 1, now=1.5)
        assert table.expire(now=3.0) == []  # used at 1.5, idle until 3.5
        assert table.expire(now=3.5) == [(e, "idle")]

    def test_zero_timeouts_never_expire(self):
        table = FlowTable()
        table.add(entry())
        assert table.expire(now=1e9) == []

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            FlowEntry(match=Match(), idle_timeout=-1)

    def test_hard_beats_idle_when_both_due(self):
        e = FlowEntry(
            match=Match(), idle_timeout=1.0, hard_timeout=1.0, install_time=0.0
        )
        assert e.expired(now=1.0) == "hard"


class TestIntrospection:
    def test_entries_by_cookie(self):
        table = FlowTable()
        e = entry()
        e.cookie = 42
        table.add(e)
        table.add(entry(priority=3, tp_dst=80))
        assert table.entries_by_cookie(42) == [e]

    def test_iteration_and_clear(self):
        table = FlowTable()
        table.add(entry(priority=1))
        table.add(entry(priority=2, tp_dst=80))
        assert len(list(table)) == 2
        table.clear()
        assert len(table) == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FlowTable(table_id=-1)
        with pytest.raises(ValueError):
            FlowTable(max_size=0)
