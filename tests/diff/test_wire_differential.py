"""Differential gates for the external (wire) control plane.

The wire gateway's contract is that moving the controller out of the
process must not change the simulation:

* **Digest parity.**  A run driven by the built-in wire learning
  client over a real loopback TCP socket produces the *same run
  digest* as the in-process ``L2LearningApp`` — same flows, same end
  times, same byte counters, bit for bit.  (``run_digest`` excludes
  the ``wire.*`` transport counters, which measure the host, not the
  simulation.)
* **Checkpoint transparency.**  Checkpointing a wire-controlled run
  mid-flight and continuing — in the same process or after a disk
  round trip — yields the uninterrupted digest.  Sockets and threads
  are wall-clock state; the snapshot carries only the client's MAC
  table and reconnects lazily.
* **Garbage resilience.**  A rogue connection feeding the server
  malformed frames gets ``ErrorMsg`` replies (or a disconnect once the
  stream cannot be re-framed) and leaves the simulation untouched.
"""

import socket
import struct
import time

from repro import Horse, HorseConfig
from repro.control.apps import L2LearningApp
from repro.control.controller import Controller
from repro.net.generators import tree
from repro.openflow.messages import ErrorMsg, Hello
from repro.runtime import load_checkpoint, save_checkpoint
from repro.runtime.scenario import reset_id_counters
from repro.stats.export import run_digest
from repro.wire.codec import HEADER_SIZE, WIRE_VERSION, FrameReader, decode, encode

from workloads import make_flow

WIRE_CONFIG = dict(
    control="wire",
    wire_client="learning",
    wire_latency_budget_s=60.0,
)


def _flows(topo):
    return [
        make_flow(topo, "h1", "h3", 4e6, size=300_000, sport=1000),
        make_flow(topo, "h3", "h1", 4e6, size=200_000, sport=1001, start=0.2),
        make_flow(topo, "h2", "h4", 4e6, size=250_000, sport=1002, start=0.4),
    ]


def _build_wire():
    reset_id_counters()
    topo = tree(2, 2)
    horse = Horse(topo, config=HorseConfig(**WIRE_CONFIG))
    horse.submit_flows(_flows(topo))
    return horse


def _build_inproc():
    reset_id_counters()
    topo = tree(2, 2)
    controller = Controller()
    controller.add_app(L2LearningApp())
    horse = Horse(topo, controller=controller)
    horse.submit_flows(_flows(topo))
    return horse


class TestWireDigestParity:
    def test_wire_learning_matches_inproc_digest(self):
        inproc = _build_inproc()
        want = run_digest(inproc.run())

        wire = _build_wire()
        try:
            result = wire.run()
        finally:
            wire.shutdown_wire()
        assert run_digest(result) == want

        # The wire leg measured its transport (so the exclusion in
        # run_digest did real work) and delivered every flow.
        assert any(key.startswith("wire.") for key in result.metrics)
        assert result.metrics["wire.packet_ins_sent"] > 0
        assert all(flow.bytes_delivered for flow in result.flows)

    def test_shutdown_is_idempotent(self):
        horse = _build_wire()
        try:
            horse.run()
        finally:
            horse.shutdown_wire()
        horse.shutdown_wire()  # second call must be a no-op
        assert horse.wire.metrics()["active_connections"] == 0.0


class TestWireCheckpointTransparency:
    def test_checkpoint_and_restore_match_uninterrupted(self, tmp_path):
        uninterrupted = _build_wire()
        try:
            want = run_digest(uninterrupted.run())
        finally:
            uninterrupted.shutdown_wire()

        path = str(tmp_path / "wire.ckpt")
        source = _build_wire()
        try:
            source.run(until=0.7)
            save_checkpoint(source, path)
            continued = run_digest(source.run())
        finally:
            source.shutdown_wire()
        assert continued == want

        restored = load_checkpoint(path)
        try:
            resumed = run_digest(restored.run())
        finally:
            restored.shutdown_wire()
        assert resumed == want


class TestWireGarbageResilience:
    def _drain_frames(self, sock, reader, want, deadline_s=20.0):
        """Read until ``want`` messages arrived or the peer closed."""
        messages = []
        deadline = time.monotonic() + deadline_s
        sock.settimeout(1.0)
        while len(messages) < want and time.monotonic() < deadline:
            try:
                data = sock.recv(65536)
            except socket.timeout:
                continue
            if not data:
                break
            reader.feed(data)
            messages.extend(decode(frame) for frame in reader.frames())
        return messages

    def test_rogue_connection_cannot_disturb_the_run(self):
        horse = _build_wire()
        try:
            horse.start_control_plane()
            host, port = horse.wire.bound_address

            rogue = socket.create_connection((host, port), timeout=10.0)
            try:
                reader = FrameReader()
                # The server greets every connection.
                greeting = self._drain_frames(rogue, reader, want=1)
                assert [type(m) for m in greeting] == [Hello]

                # A well-framed frame with an unknown type code: the
                # boundary holds, so the server answers with ErrorMsg
                # and keeps the connection.
                bad_type = struct.pack(
                    "!BBHIQ", WIRE_VERSION, 99, HEADER_SIZE + 8, 7, 1
                )
                rogue.sendall(bad_type)
                replies = self._drain_frames(rogue, reader, want=1)
                assert [type(m) for m in replies] == [ErrorMsg]

                # A bad version byte is unrecoverable: one last
                # ErrorMsg, then the server drops the stream.
                rogue.sendall(b"\x7f" + b"\x00" * 7)
                replies = self._drain_frames(rogue, reader, want=2)
                assert ErrorMsg in {type(m) for m in replies}
            finally:
                rogue.close()

            result = horse.run()
        finally:
            horse.shutdown_wire()

        assert result.metrics["wire.decode_errors"] >= 2.0

        # The rogue bytes must not have leaked into the simulation.
        inproc = _build_inproc()
        assert run_digest(result) == run_digest(inproc.run())


def test_codec_symmetry_on_the_greeting():
    # The smallest end-to-end sanity: the exact greeting frame the
    # server sends is decodable by the client-side codec.
    greeting = Hello(dpid=0, xid=5, version=WIRE_VERSION)
    assert decode(encode(greeting)) == greeting
