"""Differential-testing suite: the correctness gate for the incremental
solver hot path.

These tests compare the incremental solver against from-scratch solves
(bitwise), the flow engine's ``solver="incremental"`` mode against
``solver="full"`` (identical rates and completion times), and the
flow-level engine against the packet-level baseline (within the E3
accuracy tolerance).  See docs/testing.md.
"""
