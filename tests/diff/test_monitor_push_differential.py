"""Differential test: polled vs. pushed monitoring.

The push path must be an *acquisition* change only: at the same cadence
with no delta suppression, a reactive control loop driven by pushed
counter samples must make exactly the decisions the polled loop makes —
same samples, same group re-weightings, and bitwise-identical final
flow rates.  Any drift means the two modes diverged somewhere between
counter read-out and sample delivery.
"""

import json

from repro import Flow, Horse, HorseConfig
from repro.net.generators import leaf_spine
from repro.openflow.headers import tcp_flow


def _run(mode: str):
    topo = leaf_spine(
        3, 2, hosts_per_leaf=2, leaf_bps=1e9, spine_bps=1e9
    )
    horse = Horse(
        topo,
        policies={
            "load_balancing": {
                "mode": "reactive",
                "match_on": "ip_dst",
                "threshold": 0.5,
            }
        },
        config=HorseConfig(
            monitor_interval_s=0.5,
            monitor_mode=mode,
        ),
    )
    # Three elephants all leaving leaf1: the per-destination hashes pile
    # onto one spine uplink, so the watched spread crosses the reactive
    # balancer's hysteresis and it actually re-weights groups.
    pairs = [("h1", "h3"), ("h1", "h5"), ("h2", "h4")]
    flows = []
    for i, (src, dst) in enumerate(pairs):
        s, d = topo.host(src), topo.host(dst)
        flows.append(
            Flow(
                headers=tcp_flow(s.ip, d.ip, 40000 + i, 80),
                src=src,
                dst=dst,
                demand_bps=700e6,
                duration_s=6.0,
            )
        )
    horse.submit_flows(flows)
    result = horse.run(until=8.0)
    return topo, horse, flows, result


def _fingerprint(horse, flows, result):
    monitor = horse.monitor()
    return {
        "events": result.events,
        # Positional, not by flow id: ids are process-global counters.
        "flows": [
            (
                f.state.name,
                f.end_time,
                f.bytes_sent,       # exact float, no rounding
                f.rate_bps,         # bitwise final rate
                tuple(d.key for d in f.route.directions) if f.route else (),
            )
            for f in flows
        ],
        "rebalances": horse.controller.app("reactive-lb").rebalances,
        "samples": [
            {
                "time": s.time,
                "tx_bps": sorted(s.tx_bps.items()),
                "utilization": sorted(s.utilization.items()),
                "congested": sorted(s.congested),
            }
            for s in monitor.samples
        ],
    }


class TestPushedMonitoringMatchesPolled:
    def test_identical_decisions_and_final_rates(self):
        topo_a, horse_a, flows_a, result_a = _run("poll")
        topo_b, horse_b, flows_b, result_b = _run("push")
        fp_poll = _fingerprint(horse_a, flows_a, result_a)
        fp_push = _fingerprint(horse_b, flows_b, result_b)
        # The reactive loop actually engaged (the diff is not vacuous).
        assert fp_poll["rebalances"] > 0
        assert len(fp_poll["samples"]) >= 10
        # Byte-identical dynamics, sample for sample.
        assert json.dumps(fp_poll, sort_keys=True, default=str) == json.dumps(
            fp_push, sort_keys=True, default=str
        )

    def test_push_mode_skips_stats_polling(self):
        _, horse_poll, _, _ = _run("poll")
        _, horse_push, _, _ = _run("push")
        assert horse_push.channel.stats["counter_pushes"] > 0
        assert horse_poll.channel.stats["counter_pushes"] == 0
        # Pushed samples ride the subscription, not stats request events.
        assert (
            horse_push.channel.stats["stats_requests"]
            <= horse_poll.channel.stats["stats_requests"]
        )
