"""Differential tests at the engine level: ``solver="incremental"`` vs
``solver="full"``.

The solver-level suite proves the index math is exact; this one proves
the *engine integration* is — demand caching, per-direction allocated
totals, link flips, and the routing cache must not make the default hot
path drift from the reference mode.  Every scenario is run under both
modes and the complete per-flow dynamics fingerprint must match exactly
(bitwise rates, identical completion times and byte counts).
"""

import random

from repro import Horse, HorseConfig
from repro.flowsim import Flow
from repro.ixp import build_ixp
from repro.net.generators import fat_tree
from repro.openflow.headers import tcp_flow
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer


def _fingerprint(flows, result, engine_stats):
    return {
        "events": result.events,
        # Positional: flow ids are process-global counters, so they
        # differ across runs even when the dynamics are identical.
        "flows": [
            (
                f.state.name if hasattr(f.state, "name") else str(f.state),
                f.end_time,          # exact, no rounding
                f.bytes_sent,
                f.bytes_delivered,
                f.rate_bps,          # bitwise
                tuple(d.key for d in f.route.directions) if f.route else (),
            )
            for f in flows
        ],
        "stats": {
            k: v
            for k, v in engine_stats.items()
            # Cache hit/miss split may legitimately differ between runs
            # only if cache config differed; keep them to catch drift.
            if k != "time_advanced_s"
        },
    }


def _run_ixp(solver: str, with_failure: bool = False):
    fabric = build_ixp(8, seed=17)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=1.5e9,
        flow_config=FlowGenConfig(mean_flow_bytes=400e3, min_demand_bps=10e6),
    )
    flows = synth.steady_flows(
        RngRegistry(17).stream("diff"), duration_s=1.0, load_fraction=0.6
    )
    horse = Horse(
        fabric.topology,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine="flow", seed=17, solver=solver),
    )
    horse.submit_flows(flows)
    if with_failure:
        switch_names = {s.name for s in fabric.topology.switches}
        link = next(
            l for l in fabric.topology.links
            if {l.endpoints[0].name, l.endpoints[1].name} <= switch_names
        )
        a, b = link.endpoints[0].name, link.endpoints[1].name
        horse.fail_link(0.3, a, b)
        horse.restore_link(0.7, a, b)
    result = horse.run(until=30.0)
    return _fingerprint(flows, result, horse.engine.stats)


def test_ixp_replay_identical_across_solvers():
    assert _run_ixp("incremental") == _run_ixp("full")


def test_ixp_replay_with_link_flap_identical_across_solvers():
    """Link failure + recovery mid-run: reroutes, route-cache epoch
    bumps, and capacity touches all hit the incremental index."""
    got = _run_ixp("incremental", with_failure=True)
    want = _run_ixp("full", with_failure=True)
    assert got == want


def _run_fat_tree(solver: str):
    topo = fat_tree(4)
    hosts = topo.hosts
    rng = random.Random(23)
    flows = []
    for i in range(120):
        src, dst = rng.sample(hosts, 2)
        flows.append(
            Flow(
                headers=tcp_flow(src.ip, dst.ip, 3000 + i, 80),
                src=src.name,
                dst=dst.name,
                demand_bps=rng.choice((20e6, 50e6, 200e6)),
                size_bytes=rng.randint(200_000, 3_000_000),
                start_time=round(rng.random() * 1.5, 6),
            )
        )
    horse = Horse(
        topo,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine="flow", seed=23, solver=solver),
    )
    horse.submit_flows(flows)
    result = horse.run(until=60.0)
    return _fingerprint(flows, result, horse.engine.stats)


def test_fat_tree_identical_across_solvers():
    """Shared-core topology: one big link-sharing component, plus many
    partial overlaps — the opposite regime from the disjoint pods."""
    assert _run_fat_tree("incremental") == _run_fat_tree("full")


def test_route_cache_off_matches_on():
    """The routing cache must be a pure memoization: disabling it
    changes nothing but the hit counters."""

    def run(route_cache: bool):
        fabric = build_ixp(6, seed=9)
        synth = IxpTraceSynthesizer(fabric, peak_total_bps=800e6)
        flows = synth.steady_flows(
            RngRegistry(9).stream("rc"), duration_s=0.5
        )
        horse = Horse(
            fabric.topology,
            policies={
                "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
            },
            config=HorseConfig(engine="flow", seed=9, route_cache=route_cache),
        )
        horse.submit_flows(flows)
        result = horse.run(until=20.0)
        fp = _fingerprint(flows, result, horse.engine.stats)
        hits = fp["stats"].pop("route_cache_hits")
        fp["stats"].pop("route_cache_misses")
        return fp, hits

    fp_on, hits_on = run(True)
    fp_off, hits_off = run(False)
    assert fp_on == fp_off
    assert hits_off == 0
    assert hits_on > 0  # the cache actually engaged
