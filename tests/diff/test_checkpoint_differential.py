"""Differential tests for checkpoint/restore fidelity.

The contract is *bitwise* determinism: a run that is checkpointed,
serialized to disk, reloaded, and continued must produce exactly the
dynamics of one that was never interrupted — identical event counts,
end times, byte counters, rates, and routes.  Each test compares the
complete per-flow fingerprint (no rounding) between an interrupted and
an uninterrupted execution of the same scenario.
"""

import glob
import os

from repro import Horse
from repro.runtime import load_checkpoint, save_checkpoint
from repro.runtime.scenario import build_horse, build_traffic, reset_id_counters

SCENARIO = {
    "engine": "flow",
    "seed": 5,
    "until": 3.0,
    "topology": {"kind": "leaf-spine", "leaves": 3, "spines": 2},
    "policies": {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
    "traffic": {"kind": "matrix", "total": "1 Gbps", "horizon_s": 2.0},
}


def _build(scenario=None):
    scenario = scenario or SCENARIO
    # Rewind process-global id counters so every build assigns the same
    # flow ids — a restored run in a fresh process starts from them too.
    reset_id_counters()
    horse, fabric = build_horse(scenario)
    build_traffic(scenario["traffic"], horse, fabric)
    return horse


def _fingerprint(horse, result):
    return {
        "events": result.events,
        "sim_time_s": result.sim_time_s,
        "rules": result.rule_count,
        "flows": [
            (
                flow.flow_id,
                flow.state.name,
                flow.end_time,          # exact, no rounding
                flow.bytes_sent,
                flow.bytes_delivered,
                flow.rate_bps,          # bitwise
                tuple(d.key for d in flow.route.directions) if flow.route else (),
            )
            for flow in sorted(result.flows, key=lambda f: f.flow_id)
        ],
        "stats": dict(horse.engine.stats),
    }


class TestCheckpointRoundTrip:
    def test_segmented_with_and_without_checkpoint_identical(self, tmp_path):
        """run-to-t / continue must not care whether the state crossed
        a pickle + zlib + disk round trip at t."""
        plain = _build()
        plain.run(until=1.0)
        want = _fingerprint(plain, plain.run(until=3.0))

        path = str(tmp_path / "mid.ckpt")
        source = _build()
        source.run(until=1.0)
        save_checkpoint(source, path)
        restored = load_checkpoint(path)
        assert restored is not source  # a genuinely new object graph
        got = _fingerprint(restored, restored.run(until=3.0))
        assert got == want

    def test_restore_matches_uninterrupted_run(self, tmp_path):
        """Checkpoint/restore at t=1 vs a single uninterrupted run.

        Event counts, end times, rates, and routes are bitwise equal.
        The interruption adds a statistics accrual point at t, which
        splits the running byte sums (``a+(b+c)`` vs ``(a+b)+c``), so
        byte counters are compared at the flow-CSV export precision
        (milli-bytes) instead of bitwise; the segmented tests above are
        the bitwise serialization-fidelity contract.
        """

        def round_bytes(fp):
            fp = dict(fp)
            fp["flows"] = [
                row[:3] + (round(row[3], 3), round(row[4], 3)) + row[5:]
                for row in fp["flows"]
            ]
            return fp

        straight = _build()
        want = _fingerprint(straight, straight.run(until=3.0))

        path = str(tmp_path / "mid.ckpt")
        source = _build()
        source.run(until=1.0)
        source.checkpoint(path)
        restored = Horse.restore(path)
        got = _fingerprint(restored, restored.run(until=3.0))
        assert round_bytes(got) == round_bytes(want)

    def test_double_round_trip_identical(self, tmp_path):
        """Checkpointing twice along the way (1.0 and 2.0) changes
        nothing either — fidelity composes."""
        plain = _build()
        plain.run(until=1.0)
        plain.run(until=2.0)
        want = _fingerprint(plain, plain.run(until=3.0))

        path = str(tmp_path / "hop.ckpt")
        horse = _build()
        for t in (1.0, 2.0):
            horse.run(until=t)
            save_checkpoint(horse, path)
            horse = load_checkpoint(path)
        got = _fingerprint(horse, horse.run(until=3.0))
        assert got == want

    def test_periodic_checkpoint_is_resumable(self, tmp_path):
        """A run configured with a checkpoint ticker leaves a file a
        fresh process can resume into the identical final state."""
        path = str(tmp_path / "tick.ckpt")
        scenario = dict(
            SCENARIO,
            runtime={"checkpoint_path": path, "checkpoint_interval_s": 0.8},
        )
        full = _build(scenario)
        want = _fingerprint(full, full.run(until=3.0))
        assert os.path.exists(path)
        assert not glob.glob(path + ".tmp.*")  # atomic writes leave no temp

        restored = Horse.restore(path)
        assert restored.sim.now < 3.0  # a genuinely mid-run snapshot
        got = _fingerprint(restored, restored.run(until=3.0))
        assert got == want

    def test_hybrid_segmented_round_trip_identical(self, tmp_path):
        """The hybrid engine's full coupled state — packet queues and
        transports, solver external demands, sync ticker, selection
        threshold — survives a pickle + disk round trip bitwise."""
        scenario = dict(SCENARIO, engine="hybrid", hybrid_select="top:3")
        plain = _build(scenario)
        plain.run(until=1.0)
        want = _fingerprint(plain, plain.run(until=3.0))

        path = str(tmp_path / "hybrid.ckpt")
        source = _build(scenario)
        source.run(until=1.0)
        save_checkpoint(source, path)
        restored = load_checkpoint(path)
        assert restored is not source
        got = _fingerprint(restored, restored.run(until=3.0))
        assert got == want
        # The scenario genuinely exercised the coupling, not a
        # degenerate empty foreground.
        assert restored.engine.stats["foreground_flows"] == 3
        assert restored.engine.stats["syncs"] > 0

    def test_hybrid_periodic_checkpoint_is_resumable(self, tmp_path):
        """A mid-run hybrid snapshot from the periodic ticker resumes
        into the identical final state in a fresh object graph."""
        path = str(tmp_path / "hybrid-tick.ckpt")
        scenario = dict(
            SCENARIO,
            engine="hybrid",
            hybrid_select="top:2",
            runtime={"checkpoint_path": path, "checkpoint_interval_s": 0.8},
        )
        full = _build(scenario)
        want = _fingerprint(full, full.run(until=3.0))
        assert os.path.exists(path)

        restored = Horse.restore(path)
        assert restored.sim.now < 3.0
        got = _fingerprint(restored, restored.run(until=3.0))
        assert got == want

    def test_restored_run_keeps_checkpointing(self, tmp_path):
        """The pending ticker travels with the snapshot: a restored run
        continues writing checkpoints on the same cadence."""
        path = str(tmp_path / "tick.ckpt")
        scenario = dict(
            SCENARIO,
            runtime={"checkpoint_path": path, "checkpoint_interval_s": 0.8},
        )
        horse = _build(scenario)
        horse.run(until=1.0)  # ticker fired at 0.8
        assert os.path.exists(path)
        restored = load_checkpoint(path)
        os.unlink(path)
        restored.run(until=3.0)
        assert os.path.exists(path)  # rewritten by the restored run
