"""Differential test: reschedulable completion timers vs the seed path.

The flow engine's ``_schedule_completion`` moved from cancel-and-push
(tombstone a ``FlowCompletion``, allocate a fresh one, push) onto
``Simulator.reschedule``.  That swap is only safe if it is invisible to
simulated behavior: the sequence-number consumption, firing order, and
therefore every per-flow tuple must be bitwise identical.  This test
reinstates the seed implementation via monkeypatching and runs a
reroute storm (repeated link flaps over shared paths, maximal
completion-projection churn) under both, asserting exact equality.
"""

from contextlib import contextmanager

from repro import Horse, HorseConfig
from repro.flowsim.engine import FlowLevelEngine
from repro.flowsim.events import FlowCompletion
from repro.flowsim.flow import FlowState
from repro.ixp import build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer


def _seed_schedule_completion(self, flow):
    """The pre-reschedule implementation: cancel-and-push with an
    unchanged-time fast path (verbatim seed semantics)."""
    if flow.size_bytes is None or flow.state is not FlowState.ACTIVE:
        return
    self._accrue_flow(flow, self.sim.now)
    when = flow.projected_completion(self.sim.now)
    if when is None:
        _seed_cancel_completion(self, flow)
        return
    when = max(when, self.sim.now)
    existing = self._completions.get(flow.flow_id)
    if (
        existing is not None
        and not existing.cancelled
        and abs(existing.time - when) < 1e-9
    ):
        return
    _seed_cancel_completion(self, flow)
    event = FlowCompletion(when, self, flow)
    self._completions[flow.flow_id] = event
    self.sim.schedule(event)


def _seed_cancel_completion(self, flow):
    event = self._completions.pop(flow.flow_id, None)
    if event is not None:
        event.cancel()


@contextmanager
def _seed_completion_path():
    saved = (
        FlowLevelEngine._schedule_completion,
        FlowLevelEngine._cancel_completion,
    )
    FlowLevelEngine._schedule_completion = _seed_schedule_completion
    FlowLevelEngine._cancel_completion = _seed_cancel_completion
    try:
        yield
    finally:
        (
            FlowLevelEngine._schedule_completion,
            FlowLevelEngine._cancel_completion,
        ) = saved


def _fingerprint(flows, result):
    return {
        "events": result.events,
        "sim_time_s": result.sim_time_s,
        "flows": [
            (
                f.state.name if hasattr(f.state, "name") else str(f.state),
                f.end_time,
                f.bytes_sent,
                f.bytes_delivered,
                f.rate_bps,
                tuple(d.key for d in f.route.directions) if f.route else (),
            )
            for f in flows
        ],
    }


def _run_reroute_storm():
    fabric = build_ixp(8, seed=23)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=1.5e9,
        flow_config=FlowGenConfig(mean_flow_bytes=400e3, min_demand_bps=10e6),
    )
    flows = synth.steady_flows(
        RngRegistry(23).stream("diff"), duration_s=1.0, load_fraction=0.7
    )
    horse = Horse(
        fabric.topology,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine="flow", seed=23),
    )
    horse.submit_flows(flows)
    # A reroute storm: flap every switch-to-switch link in sequence, so
    # completion projections are torn up and re-issued over and over.
    switch_names = {s.name for s in fabric.topology.switches}
    core_links = [
        link
        for link in fabric.topology.links
        if {link.endpoints[0].name, link.endpoints[1].name} <= switch_names
    ]
    t = 0.2
    for link in core_links:
        a, b = link.endpoints[0].name, link.endpoints[1].name
        horse.fail_link(t, a, b)
        horse.restore_link(t + 0.15, a, b)
        t += 0.1
    result = horse.run(until=30.0)
    return _fingerprint(flows, result)


def test_reroute_storm_matches_seed_completion_path():
    with _seed_completion_path():
        want = _run_reroute_storm()
    got = _run_reroute_storm()
    assert got == want
