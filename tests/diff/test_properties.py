"""Property-based tests of the max-min (water-filling) invariants.

For any instance — weighted flows included — a max-min allocation must
satisfy:

1. feasibility: no link direction carries more than its capacity;
2. demand caps: no flow exceeds its own demand;
3. optimality: every flow held below its demand is blocked by at least
   one saturated link (otherwise its rate could rise, contradicting
   max-min fairness).

Both the stateless :func:`solve` and the stateful
:class:`IncrementalSolver` must satisfy them, and must agree bitwise.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.fairshare import FlowDemand, IncrementalSolver, solve

#: Tolerances for re-derived sums: the solver's own thresholds are
#: relative (RELATIVE_EPSILON), and re-accumulating allocations adds a
#: few ulps per member flow, so assertions allow a slightly wider band.
def _slack(value: float) -> float:
    return max(1e-3, 1e-6 * value)


capacities_st = st.floats(
    min_value=1e3, max_value=2e11, allow_nan=False, allow_infinity=False
)
demand_st = st.one_of(
    st.just(0.0),
    st.floats(min_value=1.0, max_value=1e11, allow_nan=False,
              allow_infinity=False),
)
weight_st = st.floats(
    min_value=0.1, max_value=16.0, allow_nan=False, allow_infinity=False
)


@st.composite
def instances(draw, max_flows=24, max_links=12):
    """A random weighted max-min instance (flows + link capacities)."""
    num_links = draw(st.integers(min_value=1, max_value=max_links))
    capacities = {
        link: draw(capacities_st) for link in range(num_links)
    }
    num_flows = draw(st.integers(min_value=1, max_value=max_flows))
    flows = []
    for flow_id in range(num_flows):
        links = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_links - 1),
                min_size=0,
                max_size=min(5, num_links),
                unique=True,
            )
        )
        flows.append(
            FlowDemand(
                flow_id,
                draw(demand_st),
                links,
                weight=draw(weight_st),
            )
        )
    return flows, capacities


def assert_maxmin_invariants(flows, capacities, alloc):
    by_id = {f.flow_id: f for f in flows}
    assert set(alloc) == set(by_id)
    link_total = {link: 0.0 for link in capacities}
    for flow in flows:
        rate = alloc[flow.flow_id]
        assert math.isfinite(rate)
        assert rate >= 0.0
        # (2) demand cap.
        assert rate <= flow.demand_bps + _slack(flow.demand_bps), (
            flow, rate
        )
        for link in flow.links:
            link_total[link] += rate
    # (1) feasibility.
    for link, total in link_total.items():
        assert total <= capacities[link] + _slack(capacities[link]), (
            link, total, capacities[link]
        )
    # (3) optimality: an unsatisfied flow crosses a saturated link.
    for flow in flows:
        rate = alloc[flow.flow_id]
        if rate >= flow.demand_bps - _slack(flow.demand_bps):
            continue
        assert flow.links, f"link-free flow {flow} held below demand"
        saturated = any(
            link_total[link] >= capacities[link] - _slack(capacities[link])
            for link in flow.links
        )
        assert saturated, (flow, rate, link_total)


@settings(max_examples=60, deadline=None)
@given(instance=instances())
def test_solve_satisfies_maxmin_invariants(instance):
    flows, capacities = instance
    alloc = solve(flows, capacities)
    assert_maxmin_invariants(flows, capacities, alloc)


@settings(max_examples=60, deadline=None)
@given(instance=instances())
def test_incremental_satisfies_invariants_and_matches_solve(instance):
    flows, capacities = instance
    solver = IncrementalSolver()
    for flow in flows:
        solver.upsert(flow)
    solver.resolve(capacities)
    alloc = {f.flow_id: solver.alloc[f.flow_id] for f in flows}
    assert_maxmin_invariants(flows, capacities, alloc)
    # Exactness: a freshly-built incremental index is a full solve, and
    # both run the identical component kernel — bitwise equality.
    assert alloc == solve(flows, capacities)


@settings(max_examples=40, deadline=None)
@given(instance=instances(), scale=st.sampled_from([1.0, 1e3, 1e5]))
def test_invariants_hold_across_capacity_scales(instance, scale):
    """The relative saturation tolerance keeps the invariants intact
    from megabit to multi-terabit capacities."""
    flows, capacities = instance
    scaled_caps = {link: cap * scale for link, cap in capacities.items()}
    scaled_flows = [
        FlowDemand(f.flow_id, f.demand_bps * scale, f.links, weight=f.weight)
        for f in flows
    ]
    alloc = solve(scaled_flows, scaled_caps)
    # Feasibility and demand caps, with the slack scaled accordingly.
    link_total = {link: 0.0 for link in scaled_caps}
    for flow in scaled_flows:
        rate = alloc[flow.flow_id]
        assert rate <= flow.demand_bps + _slack(flow.demand_bps) * scale
        for link in flow.links:
            link_total[link] += rate
    for link, total in link_total.items():
        assert total <= scaled_caps[link] + _slack(scaled_caps[link]) * scale
