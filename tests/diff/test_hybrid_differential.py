"""Differential gate for the hybrid flow/packet co-simulation engine.

Three contracts, each against a reference engine run on the identical
workload (same flow ids, same headers, same topology):

* **Empty foreground is pure flowsim, bitwise.**  ``select="none"``
  must schedule zero extra events, so event counts, end times, byte
  counters, and solved rates are exactly those of
  ``engine="incremental"`` flowsim — not approximately: ``==`` on
  unrounded floats.
* **All-foreground is pure pktsim in packet dynamics.**  With no
  background flows the fair-share load on every link is zero, the
  residual capacity equals the configured capacity exactly, and every
  packet serializes in the same time as under pure pktsim.  Event
  counts differ (the sync ticker fires), so the comparison is per-flow
  outcomes, which must be bitwise equal.
* **Mixed mode tracks pktsim where it matters.**  On the capped
  E3-style star-crossload scenario, foreground FCTs land within 10% of
  the pure packet-level run while processing several times fewer
  events.  (The wall-clock half of that claim is gated in
  ``benchmarks/bench_e11_hybrid.py``.)
"""

from repro import Horse, HorseConfig
from repro.net.generators import single_switch
from repro.runtime.scenario import reset_id_counters

from workloads import make_flow

FORWARDING = {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}}


def _crossload_flows(topo):
    """CBR cross-traffic plus two elastic high-demand flows (the
    foreground candidates: ``top:2`` ranks by demand)."""
    return [
        make_flow(topo, "h1", "h2", 4e6, duration=8.0, sport=2000, elastic=False),
        make_flow(topo, "h3", "h2", 3e6, duration=8.0, sport=2001, elastic=False),
        make_flow(topo, "h4", "h1", 2e6, duration=8.0, sport=2002, elastic=False),
        make_flow(topo, "h3", "h4", 8e6, size=1_000_000, sport=1000),
        make_flow(topo, "h2", "h3", 8e6, size=500_000, sport=1001, start=0.5),
    ]


def _run(engine, flow_builder, **config_kw):
    reset_id_counters()
    topo = single_switch(4, capacity_bps=10e6)
    horse = Horse(
        topo,
        policies=FORWARDING,
        config=HorseConfig(engine=engine, **config_kw),
    )
    flows = flow_builder(topo)
    horse.submit_flows(flows)
    result = horse.run(until=40.0)
    return horse, result, flows


def _flow_fingerprint(flows):
    """Unrounded per-flow outcomes — equality here is bitwise."""
    return [
        (
            f.flow_id,
            f.state.name,
            f.start_time,
            f.end_time,
            f.bytes_sent,
            f.bytes_delivered,
            f.bytes_dropped,
            f.rate_bps,
        )
        for f in sorted(flows, key=lambda f: f.flow_id)
    ]


class TestEmptyForeground:
    def test_bitwise_identical_to_incremental_flowsim(self):
        ref_horse, ref_result, ref_flows = _run(
            "flow", _crossload_flows, solver="incremental"
        )
        hy_horse, hy_result, hy_flows = _run(
            "hybrid", _crossload_flows, hybrid_select="none"
        )
        # Event-for-event: the lazily scheduled sync ticker must never
        # have been created.
        assert hy_result.events == ref_result.events
        assert hy_result.sim_time_s == ref_result.sim_time_s
        assert hy_result.rule_count == ref_result.rule_count
        assert _flow_fingerprint(hy_flows) == _flow_fingerprint(ref_flows)
        assert hy_horse.engine.stats["syncs"] == 0
        assert hy_horse.engine.stats["foreground_flows"] == 0
        # Everything ran in the fluid background.
        assert len(hy_horse.engine.background.flows) == len(ref_flows)
        assert len(hy_horse.engine.foreground.flows) == 0

    def test_empty_foreground_summary_matches_flowsim_bytes(self):
        _, ref_result, _ = _run("flow", _crossload_flows, solver="incremental")
        _, hy_result, _ = _run("hybrid", _crossload_flows, hybrid_select="none")
        for key in ("bytes_sent", "bytes_delivered", "total_flows"):
            assert hy_result.engine_summary[key] == ref_result.engine_summary[key]


class TestAllForeground:
    def test_packet_dynamics_identical_to_pure_pktsim(self):
        ref_horse, ref_result, ref_flows = _run("packet", _crossload_flows)
        hy_horse, hy_result, hy_flows = _run(
            "hybrid", _crossload_flows, hybrid_select="all"
        )
        # With zero background flows the residual capacity equals the
        # configured capacity exactly, so per-flow packet dynamics are
        # bitwise those of pure pktsim.  (Total event counts differ:
        # the sync ticker fires in the hybrid run.)
        assert _flow_fingerprint(hy_flows) == _flow_fingerprint(ref_flows)
        assert hy_horse.engine.stats["foreground_flows"] == len(ref_flows)
        assert len(hy_horse.engine.background.flows) == 0
        fg_stats = hy_horse.engine.foreground.stats
        assert fg_stats["packets_delivered"] == ref_horse.engine.stats[
            "packets_delivered"
        ]
        assert fg_stats["drops_congestion"] == ref_horse.engine.stats[
            "drops_congestion"
        ]


class TestMixedMode:
    def test_foreground_fcts_within_tolerance_of_pktsim(self):
        """The acceptance gate: top-2-by-demand foreground on the
        E3-style crossload lands within 10% of pure pktsim FCTs while
        processing several times fewer events."""
        _, ref_result, ref_flows = _run("packet", _crossload_flows)
        hy_horse, hy_result, hy_flows = _run(
            "hybrid", _crossload_flows, hybrid_select="top:2"
        )
        foreground_ids = set(hy_horse.engine._fg)
        assert len(foreground_ids) == 2
        compared = 0
        for ref, hyb in zip(ref_flows, hy_flows):
            assert ref.flow_id == hyb.flow_id
            if hyb.flow_id not in foreground_ids:
                continue
            ref_fct = ref.flow_completion_time
            hyb_fct = hyb.flow_completion_time
            assert ref_fct is not None and hyb_fct is not None
            assert abs(hyb_fct - ref_fct) / ref_fct < 0.10, (
                f"flow {ref.flow_id}: hybrid FCT {hyb_fct} vs pktsim {ref_fct}"
            )
            compared += 1
        assert compared == 2
        # The speed claim, in its deterministic form: far fewer events.
        assert hy_result.events < ref_result.events / 2

    def test_pinned_foreground_load_reaches_background_solver(self):
        """Coupling direction two: an inelastic foreground flow's rate
        is pinned in the fair-share solve, so a background elastic flow
        sharing its bottleneck is held to the leftover bandwidth."""

        def flows(topo):
            return [
                # CBR foreground at 6 Mbps through h2's access link.
                make_flow(topo, "h1", "h2", 6e6, duration=10.0,
                          sport=1000, elastic=False),
                # Elastic background wanting the full 10 Mbps of the
                # same downlink.
                make_flow(topo, "h3", "h2", 10e6, duration=10.0, sport=2000),
            ]

        hy_horse, _, hy_flows = _run(
            "hybrid", flows, hybrid_select="match:tp_src=1000"
        )
        background_flow = hy_flows[1]
        # Without the coupling the background flow would solve to the
        # full 10 Mbps; with 6 Mbps pinned it must stay near 4 Mbps.
        assert background_flow.rate_bps < 5e6
        assert hy_horse.engine.stats["syncs"] > 0
        assert hy_horse.engine.stats["external_updates"] > 0
