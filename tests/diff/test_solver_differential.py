"""Differential tests: IncrementalSolver vs from-scratch :func:`solve`.

The incremental hot path is only safe as a default if, after *any*
sequence of upserts/removals/link touches, its allocations are bitwise
identical to a from-scratch solve over the live flow set.  These tests
drive randomized update sequences (hypothesis-shrinkable) over
topologies up to ~50 switches (~100 directed link keys) and assert
exact equality after every resolve.

Removal-heavy sequences matter most: removals leave stale union-find
merges behind (the index only rebuilds lazily), so a dirty "component"
may really be several disconnected ones, and solving them as one merged
set would not be bitwise-identical to solving them separately.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.fairshare import (
    FlowDemand,
    IncrementalSolver,
    affected_component,
    solve,
)

#: ~50 switches' worth of directed link keys.
NUM_LINKS = 100

DEMAND_CHOICES = (0.0, 1e6, 8e6, 40e6, 100e6, 1e9, 40e9)
WEIGHT_CHOICES = (1.0, 1.0, 1.0, 0.5, 2.0, 4.0)


def _capacities(rng: random.Random) -> dict:
    return {
        link: rng.choice((10e6, 100e6, 1e9, 10e9, 100e9))
        for link in range(NUM_LINKS)
    }


def _random_flow(rng: random.Random, flow_id: int) -> FlowDemand:
    num_links = rng.randint(0, 6)
    links = rng.sample(range(NUM_LINKS), num_links)
    return FlowDemand(
        flow_id,
        rng.choice(DEMAND_CHOICES),
        links,
        weight=rng.choice(WEIGHT_CHOICES),
    )


def _reference(live: dict, capacities: dict) -> dict:
    return solve(list(live.values()), capacities)


def _check(solver: IncrementalSolver, live: dict, capacities: dict):
    solver.resolve(capacities)
    got = {fid: solver.alloc[fid] for fid in live}
    expected = _reference(live, capacities)
    assert got == expected  # bitwise, not approx


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    ops=st.integers(min_value=5, max_value=120),
    resolve_every=st.integers(min_value=1, max_value=7),
)
def test_random_update_sequences_match_full_solve(seed, ops, resolve_every):
    rng = random.Random(seed)
    capacities = _capacities(rng)
    solver = IncrementalSolver()
    live: dict = {}
    next_id = 0
    for step in range(ops):
        action = rng.random()
        if action < 0.55 or not live:
            flow = _random_flow(rng, next_id)
            next_id += 1
            live[flow.flow_id] = flow
            solver.upsert(flow)
        elif action < 0.8:
            fid = rng.choice(list(live))
            del live[fid]
            solver.remove(fid)
        else:
            # Reroute/redemand: upsert under an existing id.
            fid = rng.choice(list(live))
            flow = _random_flow(rng, fid)
            live[fid] = flow
            solver.upsert(flow)
        if step % resolve_every == 0:
            _check(solver, live, capacities)
    _check(solver, live, capacities)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_removal_heavy_sequences_split_stale_merges(seed):
    """Build one big connected blob, then carve it apart with removals —
    the surviving flows decompose into several true components that the
    stale union-find still records as one.  Stays below the lazy-rebuild
    threshold so the over-merge is actually exercised."""
    rng = random.Random(seed)
    capacities = _capacities(rng)
    solver = IncrementalSolver()
    live: dict = {}
    # Bridge flows chain many links together into one component.
    for fid in range(60):
        links = rng.sample(range(NUM_LINKS), rng.randint(2, 4))
        flow = FlowDemand(fid, rng.choice(DEMAND_CHOICES[1:]), links,
                          weight=rng.choice(WEIGHT_CHOICES))
        live[fid] = flow
        solver.upsert(flow)
    _check(solver, live, capacities)
    # Remove roughly half — far below the rebuild threshold of 64 — so
    # the union-find keeps the stale merged component.
    for fid in rng.sample(range(60), 30):
        del live[fid]
        solver.remove(fid)
    _check(solver, live, capacities)
    # Touch every remaining flow so every stale root goes dirty.
    for fid, flow in list(live.items()):
        bumped = FlowDemand(fid, flow.demand_bps * 2, flow.links,
                            weight=flow.weight)
        live[fid] = bumped
        solver.upsert(bumped)
    _check(solver, live, capacities)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_link_touch_rescopes_correctly(seed):
    """Capacity changes via touch_link re-solve the affected component
    and still match a from-scratch solve under the new capacities."""
    rng = random.Random(seed)
    capacities = _capacities(rng)
    solver = IncrementalSolver()
    live: dict = {}
    for fid in range(40):
        flow = _random_flow(rng, fid)
        live[fid] = flow
        solver.upsert(flow)
    _check(solver, live, capacities)
    for _ in range(5):
        link = rng.randrange(NUM_LINKS)
        capacities[link] = rng.choice((10e6, 1e9, 100e9))
        solver.touch_link(link)
        _check(solver, live, capacities)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_affected_component_matches_transitive_closure(seed):
    """``affected_component`` equals the brute-force transitive closure
    over the flow/link sharing graph."""
    rng = random.Random(seed)
    flows = [_random_flow(rng, fid) for fid in range(rng.randint(1, 30))]
    changed = set(
        rng.sample([f.flow_id for f in flows], rng.randint(1, len(flows)))
    )
    got = affected_component(flows, changed)
    # Brute force: fixed-point closure over shared links.
    closure = set(changed)
    links: set = set()
    for flow in flows:
        if flow.flow_id in closure:
            links.update(flow.links)
    while True:
        grew = False
        for flow in flows:
            if flow.flow_id in closure:
                continue
            if any(link in links for link in flow.links):
                closure.add(flow.flow_id)
                links.update(flow.links)
                grew = True
        if not grew:
            break
    assert got == closure
