"""Cross-engine accuracy smoke (paper E3, fast variant).

The full E3 sweep lives in ``benchmarks/bench_e3_accuracy.py``; this
pytest-speed version pins its hardest small scenario (star-crossload:
four hosts on one switch, crossing demands that oversubscribe both
directions of h2's access link) and asserts the flow-level fluid model
lands within the same tolerance of the packet-level AIMD baseline.  It
runs under the default ``solver="incremental"`` hot path, so it also
guards the default configuration against accuracy drift.
"""

from repro import Horse, HorseConfig
from repro.flowsim import Flow
from repro.net.generators import single_switch
from repro.openflow.headers import tcp_flow
from repro.stats import mean_relative_error

DURATION = 4.0
HORIZON = 40.0
PAIRS = [("h1", "h2"), ("h3", "h2"), ("h4", "h1"), ("h2", "h3")]
DEMAND_BPS = 8e6


def _flows(topo):
    flows = []
    for i, (src, dst) in enumerate(PAIRS):
        s, d = topo.host(src), topo.host(dst)
        flows.append(
            Flow(
                headers=tcp_flow(s.ip, d.ip, 1000 + i, 80,
                                 eth_src=s.mac, eth_dst=d.mac),
                src=src,
                dst=dst,
                demand_bps=DEMAND_BPS,
                duration_s=DURATION,
            )
        )
    return flows


def _goodput(flows):
    out = {}
    for i, flow in enumerate(flows):
        end = flow.end_time or DURATION
        span = max(end - flow.start_time, 1e-9)
        out[i] = flow.bytes_delivered * 8.0 / span
    return out


def _run(engine):
    topo = single_switch(4, capacity_bps=10e6)
    flows = _flows(topo)
    horse = Horse(
        topo,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine=engine),
    )
    horse.submit_flows(flows)
    horse.run(until=HORIZON)
    return flows


def test_flow_engine_tracks_packet_engine_goodput():
    flow_level = _run("flow")
    packet_level = _run("packet")
    err = mean_relative_error(_goodput(flow_level), _goodput(packet_level))
    # Same tolerance as bench_e3_accuracy.
    assert err < 0.40, err
    # Both engines must actually deliver the workload.
    assert all(f.bytes_delivered > 0 for f in flow_level)
    assert all(f.bytes_delivered > 0 for f in packet_level)
