"""RTBH coordinator tests: blackhole signalling through the route server."""

import pytest

from repro.control import ControlChannel, Controller
from repro.control.apps import BlackholeApp, ShortestPathApp
from repro.errors import ControlPlaneError
from repro.flowsim import Flow, FlowLevelEngine, Terminal
from repro.ixp import RtbhCoordinator, build_ixp
from repro.net import IPv4Network
from repro.openflow import attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator


@pytest.fixture
def fabric_stack():
    fabric = build_ixp(8, seed=2)
    topo = fabric.topology
    for s in topo.switches:
        attach_pipeline(s)
    sim = Simulator()
    controller = Controller()
    blackhole = BlackholeApp()
    controller.add_app(blackhole)
    controller.add_app(ShortestPathApp(match_on="ip_dst"))
    channel = ControlChannel(sim, topo, controller=controller)
    engine = FlowLevelEngine(sim, topo, control=channel)
    channel.connect_engine(engine)
    controller.start()
    rtbh = RtbhCoordinator(fabric.route_server, blackhole)
    return fabric, sim, engine, rtbh


def member_flow(fabric, src_index, dst_index, **kw):
    src = fabric.members[src_index]
    dst = fabric.members[dst_index]
    s = fabric.topology.host(src.host_name)
    d = fabric.topology.host(dst.host_name)
    defaults = dict(demand_bps=10e6, duration_s=10.0)
    defaults.update(kw)
    return Flow(
        headers=tcp_flow(s.ip, d.ip, 1000, 80),
        src=s.name,
        dst=d.name,
        **defaults,
    )


class TestRtbh:
    def test_announce_installs_drops(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        victim = fabric.members[1]
        # Blackhole the victim's router address space: in our
        # abstraction the member's host IP stands in for its prefixes,
        # so announce a covering /32 registered as the member's own.
        host_ip = fabric.topology.host(victim.host_name).ip
        prefix = IPv4Network((int(host_ip), 32))
        victim.prefixes.append(prefix)  # member announces its own space
        flow = member_flow(fabric, 0, 1)
        engine.submit(flow)
        sim.call_at(2.0, lambda s: rtbh.announce(victim.asn, prefix))
        sim.run(until=6.0)
        engine.finish()
        assert rtbh.is_blackholed(victim.asn, prefix)
        assert flow.route.terminal is Terminal.BLACKHOLED

    def test_withdraw_restores_traffic(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        victim = fabric.members[1]
        host_ip = fabric.topology.host(victim.host_name).ip
        prefix = IPv4Network((int(host_ip), 32))
        victim.prefixes.append(prefix)
        flow = member_flow(fabric, 0, 1, duration_s=12.0)
        engine.submit(flow)
        sim.call_at(2.0, lambda s: rtbh.announce(victim.asn, prefix))
        sim.call_at(6.0, lambda s: rtbh.withdraw(victim.asn, prefix))
        sim.run(until=12.0)
        engine.finish()
        assert not rtbh.active
        assert flow.delivered
        assert [kind for kind, _ in rtbh.log] == ["announce", "withdraw"]

    def test_members_cannot_blackhole_others_space(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        attacker = fabric.members[0]
        target_prefix = fabric.members[1].prefixes[0]
        with pytest.raises(ControlPlaneError):
            rtbh.announce(attacker.asn, target_prefix)

    def test_more_specific_of_own_space_allowed(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        member = fabric.members[2]
        own = member.prefixes[0]  # a /20
        specific = IPv4Network((int(own.network), 24))
        request = rtbh.announce(member.asn, specific)
        assert request in rtbh.active

    def test_duplicate_announce_rejected(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        member = fabric.members[2]
        prefix = member.prefixes[0]
        rtbh.announce(member.asn, prefix)
        with pytest.raises(ControlPlaneError):
            rtbh.announce(member.asn, prefix)

    def test_withdraw_unknown_rejected(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        member = fabric.members[2]
        with pytest.raises(ControlPlaneError):
            rtbh.withdraw(member.asn, member.prefixes[0])

    def test_unknown_member_rejected(self, fabric_stack):
        fabric, sim, engine, rtbh = fabric_stack
        with pytest.raises(ControlPlaneError):
            rtbh.announce(99999, IPv4Network("10.0.0.0/24"))
