"""Topology, link, and port tests."""

import pytest

from repro.errors import LinkError, NodeNotFoundError, PortError, TopologyError
from repro.net import Link, Topology
from repro.net.generators import (
    fat_tree,
    full_mesh,
    leaf_spine,
    linear,
    single_switch,
    tree,
    waxman,
)


class TestNodesAndPorts:
    def test_add_and_lookup(self):
        topo = Topology()
        topo.add_switch("s1", dpid=7)
        topo.add_host("h1")
        assert topo.switch("s1").dpid == 7
        assert topo.switch_by_dpid(7).name == "s1"
        assert topo.host("h1").mac is not None
        assert "h1" in topo and "nope" not in topo
        assert len(topo) == 2

    def test_duplicate_name_rejected(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(TopologyError):
            topo.add_host("s1")

    def test_unknown_lookups(self):
        topo = Topology()
        with pytest.raises(NodeNotFoundError):
            topo.node("ghost")
        with pytest.raises(NodeNotFoundError):
            topo.switch_by_dpid(99)

    def test_kind_checked_lookups(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(TopologyError):
            topo.host("s1")

    def test_default_names_and_addresses_are_deterministic(self):
        a = Topology()
        b = Topology()
        ha = a.add_host()
        hb = b.add_host()
        assert ha.name == hb.name == "h1"
        assert ha.mac == hb.mac
        assert ha.ip == hb.ip

    def test_port_numbers_autoincrement(self):
        topo = Topology()
        s = topo.add_switch("s1")
        assert s.add_port().number == 1
        assert s.add_port().number == 2
        with pytest.raises(PortError):
            s.add_port(1)
        with pytest.raises(PortError):
            s.port(99)


class TestLinks:
    def test_link_connects_ports_and_directions(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        link = topo.add_link(a, b, capacity_bps=5e9, delay_s=1e-3)
        assert link.capacity_bps == 5e9
        pa = a.port(1)
        assert pa.peer is b.port(1)
        direction = link.direction_from(pa)
        assert direction.dst_port.node is b
        assert direction.delay_s == 1e-3

    def test_self_loop_rejected(self):
        topo = Topology()
        a = topo.add_switch("a")
        with pytest.raises(LinkError):
            topo.add_link(a, a)

    def test_double_connect_rejected(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        pa = a.add_port()
        pb = b.add_port()
        Link(pa, pb)
        with pytest.raises(LinkError):
            Link(pa, b.add_port())

    def test_invalid_link_parameters(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        with pytest.raises(LinkError):
            topo.add_link(a, b, capacity_bps=0)
        with pytest.raises(LinkError):
            topo.add_link(a, b, delay_s=-1)

    def test_links_between_and_parallel_links(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        topo.add_link(a, b)
        topo.add_link(a, b)
        assert len(topo.links_between(a, b)) == 2
        with pytest.raises(LinkError):
            topo.link_between(a, b)  # ambiguous

    def test_egress_port_skips_down_links(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        l1 = topo.add_link(a, b)
        l2 = topo.add_link(a, b)
        l1.set_up(False)
        port = topo.egress_port(a, b)
        assert port.link is l2

    def test_utilization_tracks_allocation(self):
        topo = Topology()
        a = topo.add_switch("a")
        b = topo.add_switch("b")
        link = topo.add_link(a, b, capacity_bps=1e9)
        direction = link.direction_from(a.port(1))
        direction.allocated_bps = 25e7
        assert direction.utilization == 0.25


class TestPaths:
    def test_shortest_path_linear(self):
        topo = linear(3, hosts_per_switch=1)
        names = [n.name for n in topo.shortest_path("h1", "h3")]
        assert names == ["h1", "s1", "s2", "s3", "h3"]

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_host("h1")
        topo.add_host("h2")
        with pytest.raises(TopologyError):
            topo.shortest_path("h1", "h2")

    def test_equal_cost_paths_fattree(self):
        topo = fat_tree(4)
        paths = topo.equal_cost_paths("h1", "h16")
        assert len(paths) == 4  # (k/2)^2 core paths
        lengths = {len(p) for p in paths}
        assert lengths == {7}  # h-edge-agg-core-agg-edge-h

    def test_failure_changes_shortest_path(self):
        topo = full_mesh(3, hosts_per_switch=1)
        before = [n.name for n in topo.shortest_path("h1", "h2")]
        assert before == ["h1", "s1", "s2", "h2"]
        topo.fail_link("s1", "s2")
        after = [n.name for n in topo.shortest_path("h1", "h2")]
        assert after == ["h1", "s1", "s3", "s2", "h2"]
        topo.restore_link("s1", "s2")
        assert [n.name for n in topo.shortest_path("h1", "h2")] == before

    def test_k_shortest_paths(self):
        topo = full_mesh(4, hosts_per_switch=1)
        paths = topo.k_shortest_paths("s1", "s2", 3)
        assert paths[0] == ["s1", "s2"]
        assert len(paths) == 3
        assert all(len(p) >= 2 for p in paths)

    def test_path_links_returns_directions(self):
        topo = linear(2, hosts_per_switch=1)
        path = topo.shortest_path("h1", "h2")
        directions = topo.path_links(path)
        assert len(directions) == 3
        assert directions[0].src_port.node.name == "h1"
        assert directions[-1].dst_port.node.name == "h2"

    def test_neighbors_up_only(self):
        topo = linear(3)
        assert {n.name for n in topo.neighbors("s2")} >= {"s1", "s3"}
        topo.fail_link("s2", "s3")
        assert "s3" not in {n.name for n in topo.neighbors("s2")}
        assert "s3" in {n.name for n in topo.neighbors("s2", up_only=False)}


class TestGenerators:
    def test_fat_tree_counts(self):
        topo = fat_tree(4)
        assert len(topo.hosts) == 16
        assert len(topo.switches) == 20
        assert len(topo.links) == 48

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_leaf_spine_counts(self):
        topo = leaf_spine(4, 2, hosts_per_leaf=3)
        assert len(topo.hosts) == 12
        assert len(topo.switches) == 6
        assert len(topo.links) == 4 * 2 + 12

    def test_tree_counts(self):
        topo = tree(depth=2, fanout=2)
        assert len(topo.hosts) == 4
        assert len(topo.switches) == 3

    def test_single_switch(self):
        topo = single_switch(5)
        assert len(topo.hosts) == 5
        assert len(topo.switches) == 1

    def test_full_mesh_counts(self):
        topo = full_mesh(4, hosts_per_switch=2)
        assert len(topo.links) == 6 + 8

    def test_waxman_connected_and_deterministic(self):
        a = waxman(10, seed=5)
        b = waxman(10, seed=5)
        assert len(a.links) == len(b.links)
        # The spanning chain guarantees any pair is reachable.
        assert a.shortest_path("h1", "h10")

    def test_networkx_export(self):
        topo = fat_tree(4)
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == 36
        assert graph.number_of_edges() == 48

    def test_generator_invalid_args(self):
        with pytest.raises(TopologyError):
            linear(0)
        with pytest.raises(TopologyError):
            single_switch(0)
        with pytest.raises(TopologyError):
            leaf_spine(0, 1)
