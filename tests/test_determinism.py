"""Whole-run determinism: identical seeds produce identical dynamics."""

import pytest

from repro import Horse, HorseConfig
from repro.ixp import build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer


def full_run(engine="flow"):
    fabric = build_ixp(10, seed=31)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=2e9,
        flow_config=FlowGenConfig(mean_flow_bytes=500e3, min_demand_bps=10e6),
    )
    flows = synth.steady_flows(
        RngRegistry(31).stream("det"), duration_s=1.0, load_fraction=0.5
    )
    horse = Horse(
        fabric.topology,
        policies={"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}},
        config=HorseConfig(engine=engine, seed=31),
    )
    horse.submit_flows(flows)
    result = horse.run(until=30.0)
    horse.sync_statistics()
    fingerprint = {
        "events": result.events,
        "end_times": [round(f.end_time or -1, 9) for f in flows],
        "bytes": [round(f.bytes_delivered, 3) for f in flows],
        "routes": [
            tuple(d.key for d in f.route.directions) if f.route else ()
            for f in flows
        ],
        "port_bytes": sorted(
            (s.name, n, p.tx_bytes)
            for s in fabric.topology.switches
            for n, p in s.ports.items()
        ),
    }
    return fingerprint


def incremental_replay():
    """IXP replay under the default incremental hot path, stepping the
    simulator manually so the complete event log is observable."""
    fabric = build_ixp(10, seed=31)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=2e9,
        flow_config=FlowGenConfig(mean_flow_bytes=500e3, min_demand_bps=10e6),
    )
    flows = synth.steady_flows(
        RngRegistry(31).stream("det"), duration_s=1.0, load_fraction=0.5
    )
    horse = Horse(
        fabric.topology,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine="flow", seed=31, solver="incremental"),
    )
    horse.submit_flows(flows)
    horse.start_control_plane()
    event_log = []
    while (event := horse.sim.step()) is not None:
        event_log.append((type(event).__name__, event.time))
        if horse.sim.now > 30.0:
            break
    horse.sync_statistics()
    counters = {
        "stats": dict(horse.engine.stats),
        "rates": [f.rate_bps for f in flows],
        "end_times": [f.end_time for f in flows],
        "bytes": [f.bytes_delivered for f in flows],
        "port_bytes": sorted(
            (s.name, n, p.tx_bytes)
            for s in fabric.topology.switches
            for n, p in s.ports.items()
        ),
    }
    return event_log, counters


class TestDeterminism:
    def test_flow_engine_runs_are_bit_identical(self):
        assert full_run("flow") == full_run("flow")

    def test_incremental_solver_replay_is_bit_identical(self):
        """Two seeded replays under solver="incremental" (the default hot
        path, routing cache on) must produce the identical event log —
        same event types at the same instants, in the same order — and
        identical final counters, bitwise."""
        log_a, counters_a = incremental_replay()
        log_b, counters_b = incremental_replay()
        assert log_a == log_b
        assert counters_a == counters_b
        assert len(log_a) > 100  # the replay actually did work

    def test_packet_engine_runs_are_bit_identical(self):
        # Smaller workload: per-packet runs are expensive.
        def run():
            fabric = build_ixp(6, seed=8)
            synth = IxpTraceSynthesizer(
                fabric,
                peak_total_bps=200e6,
                flow_config=FlowGenConfig(
                    mean_flow_bytes=100e3, min_demand_bps=5e6
                ),
            )
            flows = synth.steady_flows(
                RngRegistry(8).stream("det"), duration_s=0.3
            )
            horse = Horse(
                fabric.topology,
                policies={
                    "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
                },
                config=HorseConfig(engine="packet", seed=8),
            )
            horse.submit_flows(flows)
            result = horse.run(until=20.0)
            return (
                result.events,
                [round(f.bytes_delivered, 3) for f in flows],
                [round(f.end_time or -1, 9) for f in flows],
            )

        assert run() == run()

    def test_trace_generation_deterministic_by_stream(self):
        fabric = build_ixp(6, seed=8)
        synth = IxpTraceSynthesizer(fabric, peak_total_bps=1e9)
        a = synth.steady_flows(RngRegistry(8).stream("x"), duration_s=1.0)
        b = synth.steady_flows(RngRegistry(8).stream("x"), duration_s=1.0)
        assert [(f.src, f.dst, f.start_time, f.size_bytes) for f in a] == [
            (f.src, f.dst, f.start_time, f.size_bytes) for f in b
        ]

    def test_different_seeds_differ(self):
        fabric = build_ixp(6, seed=8)
        synth = IxpTraceSynthesizer(fabric, peak_total_bps=1e9)
        a = synth.steady_flows(RngRegistry(1).stream("x"), duration_s=1.0)
        b = synth.steady_flows(RngRegistry(2).stream("x"), duration_s=1.0)
        assert [f.start_time for f in a] != [f.start_time for f in b]

    def test_rng_streams_are_independent(self):
        """Adding a consumer to one stream never perturbs another."""
        first = RngRegistry(5)
        second = RngRegistry(5)
        # Interleave differently; the 'traffic' stream must not care.
        _ = first.stream("faults").random()
        a = [first.stream("traffic").random() for _ in range(5)]
        b = [second.stream("traffic").random() for _ in range(5)]
        assert a == b

    def test_rng_reset(self):
        rngs = RngRegistry(5)
        a = [rngs.stream("x").random() for _ in range(3)]
        rngs.reset()
        b = [rngs.stream("x").random() for _ in range(3)]
        assert a == b
