"""Policy layer tests: specs, validation, composition, compiler."""

import pytest

from repro.control.policy import (
    AppPeeringSpec,
    BlackholingSpec,
    CompositionPlan,
    ForwardingSpec,
    LoadBalancingSpec,
    PolicyGenerator,
    RateLimitingSpec,
    SourceRoutingSpec,
    compile_policies,
    detect_rule_conflicts,
    parse_policy_config,
    parse_rate,
    plan_composition,
    validate_composition,
    validate_or_raise,
    validate_spec,
)
from repro.errors import PolicyConflictError, PolicyValidationError
from repro.net.generators import full_mesh, tree
from repro.openflow import ApplyActions, Drop, Match, Output, attach_pipeline


@pytest.fixture
def topo():
    return tree(2, 2)


class TestParseRate:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("500 Mbps", 500e6),
            ("1.5Gbps", 1.5e9),
            ("100kbps", 100e3),
            ("2 Tbps", 2e12),
            ("42", 42.0),
            (1000, 1000.0),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_rate(text) == pytest.approx(expected)

    @pytest.mark.parametrize("bad", ["", "fast", "-5 Mbps", 0, -1])
    def test_rejected_forms(self, bad):
        with pytest.raises(PolicyValidationError):
            parse_rate(bad)


class TestParseConfig:
    def test_figure2_style_config(self):
        specs = parse_policy_config(
            {
                "forwarding": "shortest-path",
                "load_balancing": {"mode": "ecmp"},
                "application_peering": [
                    {"src": "h1", "dst": "h3", "app": "http"}
                ],
                "rate_limiting": [
                    {"src": "h2", "dst": "h4", "rate": "500 Mbps"}
                ],
                "blackholing": [{"target": "10.0.0.5"}],
            }
        )
        kinds = [s.kind for s in specs]
        assert kinds == [
            "forwarding",
            "load_balancing",
            "application_peering",
            "rate_limiting",
            "blackholing",
        ]
        limit = [s for s in specs if isinstance(s, RateLimitingSpec)][0]
        assert limit.rate_bps == 500e6

    def test_unknown_key_rejected(self):
        with pytest.raises(PolicyValidationError):
            parse_policy_config({"qos": {}})


class TestValidation:
    def test_good_specs_pass(self, topo):
        validate_spec(ForwardingSpec(), topo)
        validate_spec(LoadBalancingSpec(), topo)
        validate_spec(AppPeeringSpec(src="h1", dst="h4", app="http"), topo)
        validate_spec(RateLimitingSpec(src="h1", dst="h4", rate_bps=1e6), topo)
        validate_spec(BlackholingSpec(target="h4"), topo)

    @pytest.mark.parametrize(
        "spec",
        [
            ForwardingSpec(mode="magic"),
            ForwardingSpec(match_on="vlan"),
            LoadBalancingSpec(mode="magic"),
            LoadBalancingSpec(threshold=0),
            AppPeeringSpec(src="h1", dst="h4", app="gopher"),
            RateLimitingSpec(rate_bps=0),
            BlackholingSpec(target="h4", direction="sideways"),
            BlackholingSpec(target="not-an-address"),
            SourceRoutingSpec(src="h1", dst="h4", path=("h1", "h4")),
        ],
    )
    def test_bad_specs_rejected(self, topo, spec):
        with pytest.raises(PolicyValidationError):
            validate_spec(spec, topo)

    def test_unknown_host_rejected(self, topo):
        with pytest.raises(Exception):
            validate_spec(AppPeeringSpec(src="ghost", dst="h4"), topo)

    def test_path_contiguity_checked(self, topo):
        spec = SourceRoutingSpec(src="h1", dst="h4", path=("h1", "s3", "h4"))
        with pytest.raises(PolicyValidationError):
            validate_spec(spec, topo)


class TestComposition:
    def test_duplicate_forwarding_conflicts(self, topo):
        conflicts = validate_composition(
            [ForwardingSpec(), ForwardingSpec(mode="learning")], topo
        )
        assert any(c.severity == "error" for c in conflicts)

    def test_learning_plus_lb_conflicts(self, topo):
        conflicts = validate_composition(
            [ForwardingSpec(mode="learning"), LoadBalancingSpec()], topo
        )
        assert any("learning" in c.message for c in conflicts)

    def test_blackhole_swallowing_steering_warns(self, topo):
        conflicts = validate_composition(
            [
                BlackholingSpec(target="h4"),
                AppPeeringSpec(src="h1", dst="h4", app="http"),
            ],
            topo,
        )
        assert any(c.severity == "warning" for c in conflicts)

    def test_conflicting_rate_limits_error(self, topo):
        conflicts = validate_composition(
            [
                RateLimitingSpec(src="h1", dst="h4", rate_bps=1e6),
                RateLimitingSpec(src="h1", dst="h4", rate_bps=2e6),
            ],
            topo,
        )
        assert any(c.severity == "error" for c in conflicts)

    def test_conflicting_source_routes_error(self, topo):
        conflicts = validate_composition(
            [
                SourceRoutingSpec(src="h1", dst="h4", path=("h1", "s2", "h4")),
                SourceRoutingSpec(src="h1", dst="h4", path=("h1", "s3", "h4")),
            ],
            topo,
        )
        assert any(c.severity == "error" for c in conflicts)

    def test_validate_or_raise_raises_on_errors(self, topo):
        with pytest.raises(PolicyConflictError):
            validate_or_raise(
                [ForwardingSpec(), ForwardingSpec(mode="learning")], topo
            )

    def test_clean_composition_returns_warnings_only(self, topo):
        warnings = validate_or_raise(
            [ForwardingSpec(), RateLimitingSpec(src="h1", dst="h4", rate_bps=1e6)],
            topo,
        )
        assert warnings == []


class TestCompositionPlan:
    def test_single_table_without_conditioning(self):
        plan = plan_composition([ForwardingSpec(), BlackholingSpec(target="x")])
        assert plan.num_tables == 1
        assert plan.table_for("blackholing") == 0

    def test_rate_limiting_gets_its_own_stage(self):
        plan = plan_composition(
            [ForwardingSpec(), RateLimitingSpec(rate_bps=1e6)]
        )
        assert plan.num_tables == 2
        assert plan.table_for("rate_limiting") == 0
        assert plan.forwarding_table == 1

    def test_priority_bands_are_ordered(self):
        plan = plan_composition([ForwardingSpec()])
        assert (
            plan.priority_for("blackholing")
            > plan.priority_for("application_peering")
            > plan.priority_for("source_routing")
            > plan.priority_for("forwarding") - 1
        )

    def test_unknown_kind_lookup(self):
        plan = plan_composition([ForwardingSpec()])
        with pytest.raises(KeyError):
            plan.table_for("rate_limiting")


class TestCompiler:
    def test_compiles_figure2_config(self, topo):
        compiled = compile_policies(
            topo,
            {
                "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"},
                "rate_limiting": [{"src": "h2", "dst": "h4", "rate": "2 Mbps"}],
                "blackholing": [{"target": "h3"}],
            },
        )
        names = [a.name for a in compiled.controller.apps]
        assert "blackhole" in names
        assert "rate-limiter" in names
        assert "shortest-path" in names
        assert compiled.num_tables == 2

    def test_default_forwarding_added_with_note(self, topo):
        compiled = compile_policies(topo, {})
        assert any("defaulted" in n for n in compiled.notes)
        assert any(a.name == "shortest-path" for a in compiled.controller.apps)

    def test_lb_subsumes_explicit_forwarding(self, topo):
        compiled = compile_policies(
            topo,
            {"forwarding": "shortest-path", "load_balancing": {"mode": "ecmp"}},
        )
        names = [a.name for a in compiled.controller.apps]
        assert "ecmp-lb" in names
        assert "shortest-path" not in names
        assert any("subsumed" in n for n in compiled.notes)

    def test_reactive_lb_selected(self, topo):
        compiled = compile_policies(
            topo, {"load_balancing": {"mode": "reactive", "threshold": 0.5}}
        )
        assert any(a.name == "reactive-lb" for a in compiled.controller.apps)

    def test_conflicting_config_raises(self, topo):
        with pytest.raises(PolicyConflictError):
            compile_policies(
                topo,
                {
                    "forwarding": "learning",
                    "load_balancing": {"mode": "ecmp"},
                },
            )

    def test_rate_limit_scoped_to_source_edge(self, topo):
        compiled = compile_policies(
            topo,
            {
                "forwarding": "shortest-path",
                "rate_limiting": [{"src": "h1", "dst": "h4", "rate": "1 Mbps"}],
            },
        )
        app = compiled.controller.app("rate-limiter")
        # h1 attaches to its leaf switch; the meter lives there only.
        peer = topo.host("h1").uplink_port.peer.node.name
        assert list(app.limits[0].scope) == [peer]

    def test_unresolvable_blackhole_target(self, topo):
        with pytest.raises(PolicyValidationError):
            compile_policies(
                topo,
                {"blackholing": [{"target": "definitely-not-a-thing"}]},
            )


class TestRuleConflictDetection:
    def test_same_priority_overlap_with_divergent_actions(self):
        topo = full_mesh(2, hosts_per_switch=1)
        switch = topo.switch("s1")
        pipeline = attach_pipeline(switch)
        pipeline.install(Match(), (ApplyActions((Output(1),)),), priority=5)
        pipeline.install(
            Match(tp_dst=80), (ApplyActions((Drop(),)),), priority=5
        )
        findings = detect_rule_conflicts(pipeline)
        assert len(findings) == 1
        assert findings[0]["priority"] == 5

    def test_different_priorities_not_flagged(self):
        topo = full_mesh(2, hosts_per_switch=1)
        pipeline = attach_pipeline(topo.switch("s1"))
        pipeline.install(Match(), (ApplyActions((Output(1),)),), priority=5)
        pipeline.install(
            Match(tp_dst=80), (ApplyActions((Drop(),)),), priority=6
        )
        assert detect_rule_conflicts(pipeline) == []
