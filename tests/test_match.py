"""Match semantics: wildcards, prefixes, subsumption, overlap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import IPv4Address, IPv4Network, MacAddress
from repro.openflow import EthType, HeaderFields, IpProto, Match, exact_match_for, match_all
from repro.openflow.headers import tcp_flow


def header(ip_dst="10.0.0.1", tp_dst=80, **kw):
    return HeaderFields(
        eth_type=EthType.IPV4,
        ip_src=IPv4Address(kw.pop("ip_src", "10.0.0.9")),
        ip_dst=IPv4Address(ip_dst),
        ip_proto=IpProto.TCP,
        tp_src=kw.pop("tp_src", 1234),
        tp_dst=tp_dst,
        **kw,
    )


class TestMatching:
    def test_wildcard_matches_everything(self):
        assert match_all().matches(HeaderFields())
        assert match_all().matches(header())
        assert match_all().is_wildcard_all

    def test_exact_field_match(self):
        m = Match(tp_dst=80)
        assert m.matches(header(tp_dst=80))
        assert not m.matches(header(tp_dst=443))

    def test_unset_header_field_fails_exact_match(self):
        m = Match(tp_dst=80)
        assert not m.matches(HeaderFields())

    def test_prefix_match(self):
        m = Match(ip_dst=IPv4Network("10.0.0.0/24"))
        assert m.matches(header(ip_dst="10.0.0.200"))
        assert not m.matches(header(ip_dst="10.0.1.1"))

    def test_exact_ip_match(self):
        m = Match(ip_src=IPv4Address("10.0.0.9"))
        assert m.matches(header())
        assert not m.matches(header(ip_src="10.0.0.10"))

    def test_in_port_match(self):
        m = Match(in_port=3)
        assert m.matches(header(), in_port=3)
        assert not m.matches(header(), in_port=4)
        assert not m.matches(header())  # no port given

    def test_mac_match(self):
        mac = MacAddress(5)
        m = Match(eth_src=mac)
        assert m.matches(HeaderFields(eth_src=mac))
        assert not m.matches(HeaderFields(eth_src=MacAddress(6)))

    def test_exact_match_for_covers_header(self):
        hdr = tcp_flow(IPv4Address("1.2.3.4"), IPv4Address("5.6.7.8"), 10, 20)
        m = exact_match_for(hdr, in_port=2)
        assert m.matches(hdr, in_port=2)
        assert not m.matches(hdr, in_port=3)


class TestSubsumption:
    def test_wildcard_subsumes_all(self):
        assert match_all().subsumes(Match(tp_dst=80))
        assert not Match(tp_dst=80).subsumes(match_all())

    def test_prefix_subsumes_longer_prefix(self):
        wide = Match(ip_dst=IPv4Network("10.0.0.0/8"))
        narrow = Match(ip_dst=IPv4Network("10.1.0.0/16"))
        assert wide.subsumes(narrow)
        assert not narrow.subsumes(wide)

    def test_prefix_subsumes_exact_address(self):
        wide = Match(ip_dst=IPv4Network("10.0.0.0/8"))
        exact = Match(ip_dst=IPv4Address("10.1.2.3"))
        assert wide.subsumes(exact)
        assert not exact.subsumes(wide)

    def test_slash32_equals_exact(self):
        exact = Match(ip_dst=IPv4Address("10.0.0.1"))
        slash32 = Match(ip_dst=IPv4Network("10.0.0.1/32"))
        assert exact.subsumes(slash32)
        assert slash32.subsumes(exact)

    def test_disjoint_fields_do_not_subsume(self):
        assert not Match(tp_dst=80).subsumes(Match(tp_dst=443))
        assert not Match(tp_dst=80).subsumes(Match(ip_proto=6))

    def test_self_subsumption(self):
        m = Match(tp_dst=80, ip_dst=IPv4Network("10.0.0.0/24"))
        assert m.subsumes(m)


class TestOverlap:
    def test_disjoint_ports_do_not_overlap(self):
        assert not Match(tp_dst=80).overlaps(Match(tp_dst=443))

    def test_different_fields_overlap(self):
        assert Match(tp_dst=80).overlaps(Match(ip_proto=6))

    def test_prefix_overlap(self):
        a = Match(ip_dst=IPv4Network("10.0.0.0/8"))
        b = Match(ip_dst=IPv4Network("10.1.0.0/16"))
        c = Match(ip_dst=IPv4Network("11.0.0.0/8"))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_in_port_disjoint(self):
        assert not Match(in_port=1).overlaps(Match(in_port=2))
        assert Match(in_port=1).overlaps(Match())

    def test_wildcard_count(self):
        assert match_all().wildcard_count == 10
        assert Match(tp_dst=80).wildcard_count == 9


@settings(max_examples=80, deadline=None)
@given(
    ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    prefix_len=st.integers(min_value=0, max_value=32),
    tp=st.integers(min_value=1, max_value=65535),
)
def test_property_subsumes_implies_matches(ip, prefix_len, tp):
    """Any header matched by the narrow match is matched by the wide one."""
    wide = Match(ip_dst=IPv4Network((ip, prefix_len)))
    narrow = Match(ip_dst=IPv4Address(ip), tp_dst=tp)
    assert wide.subsumes(narrow)
    hdr = HeaderFields(ip_dst=IPv4Address(ip), tp_dst=tp)
    assert narrow.matches(hdr)
    assert wide.matches(hdr)
