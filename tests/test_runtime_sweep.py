"""Unit tests for the sweep runner: seeds, expansion, pool, manifests."""

import json
import os
import time

import pytest

from repro.errors import SweepError
from repro.runtime import (
    SweepSpec,
    aggregate_report,
    expand_jobs,
    resume_sweep,
    run_jobs,
    run_sweep,
    save_checkpoint,
)
from repro.runtime.scenario import build_horse, build_traffic, reset_id_counters
from repro.runtime.sweep import _job_path, _sweep_worker
from repro.sim.rng import spawn_seed

BASE_SCENARIO = {
    "engine": "flow",
    "until": 2.0,
    "topology": {"kind": "star", "hosts": 4},
    "policies": {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
    "traffic": {"kind": "matrix", "total": "50 Mbps", "horizon_s": 1.0},
}


def make_spec(**runtime):
    doc = {
        "name": "unit",
        "base": BASE_SCENARIO,
        "grid": {"solver": ["incremental", "full"], "topology.hosts": [4, 5]},
        "runtime": dict(
            {"seed": 9, "retries": 2, "backoff_s": 0.01, "timeout_s": 120},
            **runtime,
        ),
    }
    return SweepSpec.from_dict(doc)


class TestSpawnSeed:
    def test_stable(self):
        assert spawn_seed(7, "job", 3) == spawn_seed(7, "job", 3)

    def test_distinct_per_index(self):
        seeds = {spawn_seed(7, "job", i) for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_per_master(self):
        assert spawn_seed(1, "job", 0) != spawn_seed(2, "job", 0)

    def test_key_parts_are_tagged_not_concatenated(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert spawn_seed(0, "ab", "c") != spawn_seed(0, "a", "bc")

    def test_range_is_63_bit_non_negative(self):
        for i in range(50):
            seed = spawn_seed(123, i)
            assert 0 <= seed < 2**63


class TestExpansion:
    def test_product_order_and_dotted_paths(self):
        jobs = expand_jobs(make_spec())
        assert [job.index for job in jobs] == [0, 1, 2, 3]
        assert [job.params for job in jobs] == [
            {"solver": "incremental", "topology.hosts": 4},
            {"solver": "incremental", "topology.hosts": 5},
            {"solver": "full", "topology.hosts": 4},
            {"solver": "full", "topology.hosts": 5},
        ]
        assert jobs[1].scenario["topology"]["hosts"] == 5
        assert jobs[2].scenario["solver"] == "full"

    def test_per_job_seeds_are_spawned_from_sweep_seed(self):
        jobs = expand_jobs(make_spec())
        for job in jobs:
            assert job.seed == spawn_seed(9, "job", job.index)
            assert job.scenario["seed"] == job.seed
        assert len({job.seed for job in jobs}) == len(jobs)

    def test_seed_grid_axis_wins(self):
        spec = SweepSpec.from_dict(
            {"base": BASE_SCENARIO, "grid": {"seed": [11, 22]}}
        )
        assert [job.seed for job in expand_jobs(spec)] == [11, 22]

    def test_spec_validation(self):
        with pytest.raises(SweepError, match="'base'"):
            SweepSpec.from_dict({"grid": {"seed": [1]}})
        with pytest.raises(SweepError, match="grid"):
            SweepSpec.from_dict({"base": {}, "grid": {}})
        with pytest.raises(SweepError, match="non-empty list"):
            SweepSpec.from_dict({"base": {}, "grid": {"x": []}})

    def test_base_file_resolved_relative_to_spec(self, tmp_path):
        with open(tmp_path / "base.json", "w") as handle:
            json.dump(BASE_SCENARIO, handle)
        spec_path = str(tmp_path / "sweep.json")
        with open(spec_path, "w") as handle:
            json.dump(
                {"base_file": "base.json", "grid": {"seed": [1]}}, handle
            )
        spec = SweepSpec.from_file(spec_path)
        assert spec.base["topology"] == BASE_SCENARIO["topology"]


def _crash_then_succeed(payload):
    if payload["attempt"] <= payload["crashes"]:
        os._exit(23)
    return {"index": payload["index"], "attempt": payload["attempt"]}


def _hang(payload):
    time.sleep(60)
    return {}


def _ok(payload):
    return {"index": payload["index"]}


class TestPool:
    def test_crash_is_isolated_and_retried(self, tmp_path):
        out = str(tmp_path / "r0.json")
        outcomes = run_jobs(
            [{"index": 0, "crashes": 1}],
            _crash_then_succeed,
            [out],
            workers=2,
            retries=2,
            backoff_s=0.01,
        )
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        with open(out) as handle:
            assert json.load(handle)["attempt"] == 2

    def test_exhausted_retries_reports_failure(self, tmp_path):
        outcomes = run_jobs(
            [{"index": 0, "crashes": 99}],
            _crash_then_succeed,
            [str(tmp_path / "r0.json")],
            retries=1,
            backoff_s=0.01,
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert "exit code 23" in outcomes[0].error

    def test_one_crash_never_kills_other_jobs(self, tmp_path):
        payloads = [{"index": i, "crashes": 99 if i == 1 else 0} for i in range(4)]
        outcomes = run_jobs(
            payloads,
            _crash_then_succeed,
            [str(tmp_path / f"r{i}.json") for i in range(4)],
            workers=2,
            retries=0,
        )
        assert [o.ok for o in outcomes] == [True, False, True, True]

    def test_timeout_terminates_hung_worker(self, tmp_path):
        start = time.monotonic()
        outcomes = run_jobs(
            [{"index": 0}],
            _hang,
            [str(tmp_path / "r0.json")],
            timeout_s=0.3,
            retries=0,
        )
        assert not outcomes[0].ok
        assert "timed out" in outcomes[0].error
        assert time.monotonic() - start < 30

    def test_validation(self, tmp_path):
        with pytest.raises(SweepError, match="output paths"):
            run_jobs([{}], _ok, [])
        with pytest.raises(SweepError, match="worker"):
            run_jobs([{}], _ok, [str(tmp_path / "x")], workers=0)
        with pytest.raises(SweepError, match="retries"):
            run_jobs([{}], _ok, [str(tmp_path / "x")], retries=-1)


class TestSweepExecution:
    def test_parallel_crashy_sweep_matches_serial_report(self, tmp_path):
        """The acceptance scenario: 4 jobs on 2 workers with one
        injected crash must retry, complete, and aggregate to exactly
        the serial (fault-free) report."""
        events = []
        crashy = run_sweep(
            make_spec(fault={"job": 2, "crashes": 1}),
            str(tmp_path / "par"),
            workers=2,
            on_event=lambda *args: events.append(args),
        )
        serial = run_sweep(make_spec(), str(tmp_path / "ser"), workers=1)
        assert crashy["results"] == serial["results"]
        assert crashy["summary"] == serial["summary"]
        assert crashy["summary"]["completed"] == 4
        assert crashy["execution"]["retried"] == [2]
        kinds = [e[0] for e in events if e[1] == 2]
        assert "crash" in kinds and "retry" in kinds and "ok" in kinds

    def test_report_and_manifest_on_disk(self, tmp_path):
        out = str(tmp_path / "sweep")
        report = run_sweep(make_spec(), out, workers=2)
        with open(os.path.join(out, "report.json")) as handle:
            assert json.load(handle) == report
        with open(os.path.join(out, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert [e["status"] for e in manifest["jobs"]] == ["done"] * 4
        assert report["summary"]["failed"] == []
        for entry in report["results"]:
            assert entry["result"]["engine_stats"]["solver_mode"] in (
                "incremental", "full",
            )

    def test_resume_reruns_only_unfinished_jobs(self, tmp_path):
        out = str(tmp_path / "sweep")
        original = run_sweep(make_spec(), out, workers=2)
        # Simulate an interrupted sweep: forget job 2's completion.
        manifest_path = os.path.join(out, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["jobs"][2]["status"] = "pending"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        os.unlink(_job_path(out, 2))

        reran = []
        resumed = resume_sweep(
            out, on_event=lambda kind, index, *rest: reran.append((kind, index))
        )
        assert ("start", 2) in reran
        assert all(index == 2 for _, index in reran)
        assert resumed["results"] == original["results"]
        assert resumed["summary"] == original["summary"]

    def test_resume_of_completed_sweep_is_a_no_op(self, tmp_path):
        out = str(tmp_path / "sweep")
        original = run_sweep(make_spec(), out, workers=2)
        reran = []
        resumed = resume_sweep(
            out, on_event=lambda kind, index, *rest: reran.append(kind)
        )
        assert reran == []
        assert resumed["results"] == original["results"]

    def test_failed_job_reported_not_raised(self, tmp_path):
        report = run_sweep(
            make_spec(fault={"job": 1, "crashes": 99}, retries=1),
            str(tmp_path / "sweep"),
            workers=2,
        )
        assert report["summary"]["failed"] == [1]
        assert report["summary"]["completed"] == 3
        assert len(report["results"]) == 3

    def test_resume_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(SweepError, match="manifest"):
            resume_sweep(str(tmp_path / "nothing"))


class TestWorkerCheckpointResume:
    def test_worker_resumes_from_periodic_checkpoint(self, tmp_path):
        """A retry after a mid-run crash picks up from the last periodic
        checkpoint instead of starting over, and lands on the same
        result as an uninterrupted job."""
        scenario = dict(BASE_SCENARIO, seed=33)
        ckpt = str(tmp_path / "job.ckpt")

        fresh = _sweep_worker(
            {"index": 0, "params": {}, "scenario": scenario, "attempt": 1}
        )
        assert fresh["execution"]["resumed_from_checkpoint"] is False

        # Fake the crashed first attempt's leftover: a mid-run snapshot.
        reset_id_counters()
        horse, fabric = build_horse(scenario)
        build_traffic(scenario["traffic"], horse, fabric)
        horse.run(until=1.0)
        save_checkpoint(horse, ckpt)

        retried = _sweep_worker(
            {
                "index": 0,
                "params": {},
                "scenario": scenario,
                "attempt": 2,
                "checkpoint_path": ckpt,
                "checkpoint_interval_s": 0.5,
            }
        )
        assert retried["execution"]["resumed_from_checkpoint"] is True
        assert not os.path.exists(ckpt)  # cleaned up after success
        assert retried["result"] == fresh["result"]


def test_aggregate_report_is_pure_recomputation(tmp_path):
    out = str(tmp_path / "sweep")
    report = run_sweep(make_spec(), out, workers=2)
    again = aggregate_report(out)
    assert again["results"] == report["results"]
    assert again["summary"] == report["summary"]
