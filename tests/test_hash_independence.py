"""Hash-seed independence: run bytes must not depend on PYTHONHASHSEED.

Python randomizes ``str`` hashing per process, so any simulation code
path that iterates a set or dict of strings in hash order produces
different event orderings in different processes.  The lint rules
(DET003) catch the static pattern; this test catches the dynamic
outcome: the full run JSON written by ``repro run`` must be
byte-identical (modulo wall time) across two processes with different
hash seeds.

CI additionally runs the whole tier-1 suite under two seeds (see the
hash-independence matrix in .github/workflows/ci.yml); those legs
compare the golden digests, which are committed constants, so they
gate the same property end to end.
"""

import json
import os
import subprocess
import sys

import pytest

REPO = os.path.join(os.path.dirname(__file__), "..")
SCENARIOS = ["quickstart.json", "hybrid_demo.json"]


def _run_under_seed(scenario, seed, out_path):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "run",
            os.path.join(REPO, "examples", "scenarios", scenario),
            "--json",
            out_path,
        ],
        env=env,
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    with open(out_path) as handle:
        doc = json.load(handle)
    doc.pop("wall_time_s", None)
    return json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_run_json_identical_across_hash_seeds(scenario, tmp_path):
    a = _run_under_seed(scenario, "0", str(tmp_path / "a.json"))
    b = _run_under_seed(scenario, "4242", str(tmp_path / "b.json"))
    assert a == b, f"{scenario}: run document depends on PYTHONHASHSEED"
