"""Telemetry tests: registry, trace bus, profiler, and the hub."""

import io
import json

import pytest

from repro import Flow, Horse, HorseConfig
from repro.errors import TelemetryError
from repro.net.generators import tree
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseProfiler,
    Telemetry,
    TraceBus,
    read_trace,
    summarize_trace,
)


def flow_between(topo, src, dst, **kw):
    s, d = topo.host(src), topo.host(dst)
    sport = kw.pop("sport", 1000)
    defaults = dict(demand_bps=1e6, size_bytes=100_000)
    defaults.update(kw)
    return Flow(
        headers=tcp_flow(s.ip, d.ip, sport, 80), src=src, dst=dst, **defaults
    )


def small_horse(**config_kw):
    topo = tree(2, 2)
    horse = Horse(
        topo,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(**config_kw),
    )
    horse.submit_flows([flow_between(topo, "h1", "h4")])
    return topo, horse


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("writes").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snap = registry.snapshot()
        assert snap["writes"] == 2.0
        assert snap["depth"] == 7.0
        assert snap["lat"]["count"] == 1
        assert snap["lat"]["buckets"] == {0.1: 1, 1.0: 1}

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        assert registry.counter("x") is c
        assert isinstance(c, Counter)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_counter_cannot_decrease(self):
        with pytest.raises(TelemetryError):
            Counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("x")
        g.inc(5)
        g.dec(2)
        assert g.value_snapshot() == 3.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(TelemetryError):
            Histogram("x", buckets=(1.0, 0.1))

    def test_source_flattening_with_tuple_keys(self):
        registry = MetricsRegistry()
        registry.register_source(
            "monitor",
            lambda: {"max_utilization": {("s1", 2): 0.5}, "samples": 3},
        )
        snap = registry.snapshot()
        assert snap["monitor.max_utilization.s1:2"] == 0.5
        assert snap["monitor.samples"] == 3

    def test_duplicate_source_prefix_rejected(self):
        registry = MetricsRegistry()
        registry.register_source("a", dict)
        with pytest.raises(TelemetryError):
            registry.register_source("a", dict)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("runs", help="completed runs").inc(3)
        registry.histogram("fct", buckets=(0.1, 1.0)).observe(0.5)
        registry.register_source("engine", lambda: {"mode": "flow", "n": 2})
        text = registry.to_prometheus()
        assert "# HELP runs completed runs" in text
        assert "# TYPE runs counter" in text
        assert "runs 3" in text
        assert 'fct_bucket{le="+Inf"} 1' in text
        assert "fct_count 1" in text
        assert "engine_n 2" in text
        # Non-numeric source values stay as comments.
        assert "# engine_mode = 'flow'" in text


class TestTraceBus:
    def test_buffer_mode_records_header_and_events(self):
        bus = TraceBus()
        bus.emit("x", a=1)
        assert [e["kind"] for e in bus.events] == ["trace.open", "x"]
        assert bus.events[1]["a"] == 1
        assert bus.emitted == 2

    def test_sim_clock_stamps_records(self):
        sim = Simulator()
        bus = TraceBus(sim)
        sim.call_in(2.5, lambda s: bus.emit("later"))
        sim.run()
        assert bus.events[-1]["t"] == 2.5

    def test_span_measures_wall_time(self):
        bus = TraceBus()
        with bus.span("work", step="s"):
            pass
        record = bus.events[-1]
        assert record["kind"] == "work" and record["step"] == "s"
        assert record["wall_dur_s"] >= 0.0

    def test_path_xor_stream(self, tmp_path):
        with pytest.raises(TelemetryError):
            TraceBus(path=str(tmp_path / "t.jsonl"), stream=io.StringIO())

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        bus = TraceBus(path=path)
        bus.emit("one", n=1)
        bus.close()
        records = read_trace(path)
        assert [r["kind"] for r in records] == [
            "trace.open", "one", "trace.close"
        ]
        summary = summarize_trace(records)
        assert summary["records"] == 3
        assert summary["kinds"]["one"]["count"] == 1

    def test_stream_mode_writes_jsonl(self):
        stream = io.StringIO()
        bus = TraceBus(stream=stream)
        bus.emit("x")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [r["kind"] for r in lines] == ["trace.open", "x"]


class TestProfiler:
    def test_phases_accumulate(self):
        profiler = PhaseProfiler()
        profiler.add("solve", 0.25)
        profiler.add("solve", 0.5)
        with profiler.phase("route"):
            pass
        snap = profiler.snapshot()
        assert snap["solve"] == {"wall_s": 0.75, "count": 2}
        assert snap["route"]["count"] == 1


class TestHub:
    def test_enable_disable_tracing_swaps_sinks(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        telemetry.bind(sim)
        bus = telemetry.enable_tracing()
        assert sim.trace_bus is bus
        assert telemetry.enable_tracing() is bus  # idempotent
        bus.emit("x")
        summary = telemetry.disable_tracing()
        assert sim.trace_bus is None
        assert summary["x"]["count"] == 1
        assert telemetry.disable_tracing() is None

    def test_late_bind_applies_live_bus(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        bus = telemetry.enable_tracing()
        telemetry.bind(sim)
        assert sim.trace_bus is bus

    def test_profiling_toggles(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        telemetry.bind(sim)
        profiler = telemetry.enable_profiling()
        assert sim.profiler is profiler
        sim.run(until=1.0)
        snapshot = telemetry.disable_profiling()
        assert sim.profiler is None
        assert isinstance(snapshot, dict)


class TestHorseIntegration:
    def test_disabled_telemetry_is_a_no_op(self):
        _, horse = small_horse()
        assert horse.sim.trace_bus is None
        assert horse.engine.trace_bus is None
        assert horse.channel.trace_bus is None
        assert not horse.telemetry.tracing_enabled
        result = horse.run()
        # No trace anywhere, no wall-clock profile in the stats.
        assert horse.sim.trace_bus is None
        assert "profile" not in result.engine_stats
        assert result.metrics["engine.rate_solves"] >= 1

    def test_run_metrics_unify_engine_channel_sim(self):
        _, horse = small_horse(monitor_interval_s=1.0)
        result = horse.run(until=3.0)
        metrics = result.metrics
        assert metrics["engine.rate_solves"] >= 1
        assert metrics["channel.flow_mods"] >= 1
        assert metrics["sim.now"] == 3.0
        assert metrics["monitor.samples"] == 3
        assert metrics["monitor.mode"] == "poll"

    def test_tracing_via_config_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        _, horse = small_horse(trace_path=path)
        horse.run()
        horse.telemetry.disable_tracing()
        kinds = {r["kind"] for r in read_trace(path)}
        assert "kernel.event" in kinds
        assert "channel.flow_mod" in kinds
        assert "flow.completed" in kinds
        assert "solver.resolve" in kinds

    def test_profiling_via_config_reports_phases(self):
        _, horse = small_horse(profile=True)
        result = horse.run()
        profile = result.engine_stats["profile"]
        assert set(profile) >= {"dispatch", "solve", "route"}
        assert profile["dispatch"]["count"] > 0

    def test_monitor_accessor_creates_and_returns(self):
        _, horse = small_horse(monitor_interval_s=1.0)
        monitor = horse.monitor()
        assert monitor is horse.monitor()
        horse.run(until=2.5)
        assert len(monitor.samples) == 2

    def test_monitor_accessor_without_config_starts_default(self):
        _, horse = small_horse()
        monitor = horse.monitor()
        horse.run(until=2.5)
        assert monitor.interval == 1.0
        assert len(monitor.samples) == 2

    def test_checkpoint_restore_preserves_registry(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        _, horse = small_horse(monitor_interval_s=1.0)
        horse.telemetry.registry.counter("app.custom").inc(5)
        horse.run(until=2.0)
        before = horse.telemetry.snapshot()
        horse.checkpoint(path)

        restored = Horse.restore(path)
        after = restored.telemetry.snapshot()
        assert after == before
        assert after["app.custom"] == 5.0
        # Sources stay live: running further advances the pulled values.
        restored.run(until=4.0)
        assert restored.telemetry.snapshot()["sim.now"] == 4.0
        assert restored.telemetry.snapshot()["monitor.samples"] == 4
