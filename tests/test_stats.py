"""Statistics tests: time series, metrics, collector."""

import pytest

from repro.stats import (
    RunStatsCollector,
    TimeSeries,
    jain_fairness,
    mean_relative_error,
    percentiles,
    relative_error,
    rmse,
    speedup,
    summarize,
)


class TestTimeSeries:
    def test_append_and_stats(self):
        ts = TimeSeries("x")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
            ts.append(t, v)
        assert len(ts) == 3
        assert ts.mean() == pytest.approx(2.0)
        assert ts.maximum() == 3.0
        assert ts.percentile(50) == 2.0

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries()
        ts.append(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 2.0)

    def test_value_at_step_semantics(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert ts.value_at(0.5) is None
        assert ts.value_at(1.0) == 10.0
        assert ts.value_at(1.9) == 10.0
        assert ts.value_at(5.0) == 20.0

    def test_window(self):
        ts = TimeSeries()
        for t in range(5):
            ts.append(float(t), float(t))
        window = ts.window(1.0, 3.0)
        assert window.times == [1.0, 2.0]

    def test_resample_holds_last_value(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        ts.append(2.5, 5.0)
        grid = ts.resample(1.0, end=3.0)
        assert grid.values == [1.0, 1.0, 1.0, 5.0]

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.append(0.0, 0.0)
        ts.append(1.0, 10.0)  # 0 held 1s, 10 held until end
        assert ts.time_weighted_mean(until=2.0) == pytest.approx(5.0)

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        assert ts.time_weighted_mean() == 0.0
        assert len(ts.resample(1.0)) == 0


class TestMetrics:
    def test_jain_bounds(self):
        assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_fairness([]) == 1.0

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_mean_relative_error_over_keys(self):
        measured = {"a": 11.0, "b": 18.0}
        reference = {"a": 10.0, "b": 20.0}
        assert mean_relative_error(measured, reference) == pytest.approx(0.1)

    def test_rmse(self):
        assert rmse([1, 2], [1, 2]) == 0.0
        assert rmse([0, 0], [3, 4]) == pytest.approx(3.5355, rel=1e-3)
        with pytest.raises(ValueError):
            rmse([1], [1, 2])

    def test_percentiles_and_summary(self):
        values = list(range(1, 101))
        p = percentiles(values, (50, 99))
        assert p[50] == pytest.approx(50.5)
        s = summarize(values)
        assert s["count"] == 100
        assert s["max"] == 100
        assert summarize([])["count"] == 0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")


class TestCollector:
    def test_flow_lifecycle_collection(self, line2, install_path):
        from repro.flowsim import Flow, FlowLevelEngine
        from repro.openflow.headers import tcp_flow
        from repro.sim import Simulator

        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        collector = RunStatsCollector(line2)
        collector.attach_flow_engine(engine)
        collector.enable_link_sampling(sim, interval=0.5)
        h1, h2 = line2.host("h1"), line2.host("h2")
        flow = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
            src="h1",
            dst="h2",
            demand_bps=8e6,
            size_bytes=2_000_000,
        )
        engine.submit(flow)
        sim.run()
        assert collector.completed == [flow]
        assert collector.fct_summary()["count"] == 1
        assert collector.fairness() == 1.0
        throughput = collector.throughput_by_flow()[flow.flow_id]
        assert throughput == pytest.approx(8e6, rel=0.01)
        # Link sampling caught the busy uplink at 80% utilization.
        peak = collector.max_link_utilization()
        assert max(peak.values()) == pytest.approx(0.8, rel=0.05)

    def test_harvest_from_any_engine(self, line2, install_path):
        from repro.flowsim import Flow, FlowState
        from repro.openflow.headers import tcp_flow

        h1, h2 = line2.host("h1"), line2.host("h2")
        flow = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
            src="h1",
            dst="h2",
            demand_bps=1e6,
            size_bytes=1000,
        )
        flow.state = FlowState.COMPLETED
        flow.end_time = 1.0
        collector = RunStatsCollector(line2)
        collector.harvest_flows({flow.flow_id: flow})
        collector.harvest_flows({flow.flow_id: flow})  # no duplicates
        assert collector.completed == [flow]


class TestDeprecatedAlias:
    def test_constructor_warns_once_per_call_site(self, line2):
        import warnings

        from repro.stats import StatsCollector

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(3):
                collector = StatsCollector(line2)  # one call site
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "RunStatsCollector" in str(deprecations[0].message)
        assert isinstance(collector, RunStatsCollector)
