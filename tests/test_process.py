"""Coroutine-process API tests."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, spawn


def test_sleep_sequence():
    sim = Simulator()
    log = []

    def body(s):
        log.append(s.now)
        yield 1.5
        log.append(s.now)
        yield 0.5
        log.append(s.now)

    spawn(sim, body)
    sim.run()
    assert log == [0.0, 1.5, 2.0]


def test_spawn_with_delay_and_args():
    sim = Simulator()
    log = []

    def body(s, tag, extra=None):
        log.append((s.now, tag, extra))
        yield 1.0

    spawn(sim, body, "x", extra=7, delay=3.0)
    sim.run()
    assert log == [(3.0, "x", 7)]


def test_join_returns_result():
    sim = Simulator()
    seen = {}

    def worker(s):
        yield 2.0
        return "payload"

    def boss(s):
        handle = spawn(s, worker)
        result = yield handle
        seen["result"] = result
        seen["time"] = s.now

    spawn(sim, boss)
    sim.run()
    assert seen == {"result": "payload", "time": 2.0}


def test_join_already_finished_process():
    sim = Simulator()
    order = []

    def fast(s):
        yield 0.5
        order.append("fast")
        return 1

    def slow(s):
        handle = spawn(s, fast)
        yield 2.0  # fast finishes long before we join
        value = yield handle
        order.append(("slow", value, s.now))

    spawn(sim, slow)
    sim.run()
    assert order == ["fast", ("slow", 1, 2.0)]


def test_multiple_waiters_all_resume():
    sim = Simulator()
    hits = []

    def worker(s):
        yield 1.0
        return "done"

    handle = None

    def waiter(s, tag):
        value = yield handle
        hits.append((tag, value))

    def root(s):
        nonlocal handle
        handle = spawn(s, worker)
        spawn(s, waiter, "a")
        spawn(s, waiter, "b")
        yield 0.0

    spawn(sim, root)
    sim.run()
    assert sorted(hits) == [("a", "done"), ("b", "done")]


def test_negative_delay_raises():
    sim = Simulator()

    def body(s):
        yield -1.0

    spawn(sim, body)
    with pytest.raises(SimulationError):
        sim.run()


def test_bad_yield_type_raises():
    sim = Simulator()

    def body(s):
        yield "soon"

    spawn(sim, body)
    with pytest.raises(SimulationError):
        sim.run()


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        spawn(sim, lambda s: None)


def test_process_drives_engine_scenario(line2, install_path):
    """An operator script: wait, fail a link, wait, restore."""
    from repro.flowsim import Flow, FlowLevelEngine
    from repro.openflow.headers import tcp_flow

    install_path(line2, "h1", "h2")
    sim = Simulator()
    engine = FlowLevelEngine(sim, line2)
    h1, h2 = line2.host("h1"), line2.host("h2")
    flow = Flow(
        headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
        src="h1", dst="h2", demand_bps=4e6, duration_s=6.0,
    )
    engine.submit(flow)

    def operator(s):
        yield 2.0
        engine.on_link_state("s1", "s2", up=False)
        yield 1.0
        engine.on_link_state("s1", "s2", up=True)

    spawn(sim, operator)
    sim.run()
    engine.finish()
    # 1 s of the 6 s window was dark: 5 s x 4 Mb/s delivered.
    assert flow.bytes_delivered == pytest.approx(4e6 * 5 / 8, rel=1e-6)
