"""Cross-subsystem integration scenarios.

Each test wires several subsystems together the way a user would and
checks system-level invariants: conservation of bytes, counter
symmetry, engine agreement on policy outcomes, and end-to-end behaviour
under churn.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Flow, Horse, HorseConfig, TrafficMatrix
from repro.control import ControlChannel, Controller
from repro.control.apps import BlackholeApp, ShortestPathApp
from repro.flowsim import FlowLevelEngine, FlowState
from repro.ixp import build_ixp
from repro.net.generators import fat_tree, single_switch, tree
from repro.openflow import attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import FaultProfile, LinkFaultInjector, Simulator
from repro.traffic import FlowGenConfig, FlowGenerator, IxpTraceSynthesizer
from repro.sim.rng import RngRegistry


class TestConservation:
    def test_bytes_conserved_on_ixp_under_load(self):
        fabric = build_ixp(12, seed=6)
        synth = IxpTraceSynthesizer(
            fabric,
            peak_total_bps=5e9,
            flow_config=FlowGenConfig(mean_flow_bytes=1e6,
                                      min_demand_bps=10e6),
        )
        flows = synth.steady_flows(
            RngRegistry(6).stream("int"), duration_s=1.0, load_fraction=0.5
        )
        horse = Horse(
            fabric.topology,
            policies={"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}},
        )
        horse.submit_flows(flows)
        result = horse.run(until=60.0)
        # Every routed byte was delivered (elastic flows, no drops).
        summary = result.engine_summary
        assert summary["bytes_delivered"] == pytest.approx(
            summary["bytes_sent"], rel=1e-9
        )
        # Volume flows all completed and sent exactly their size.
        for flow in flows:
            assert flow.state is FlowState.COMPLETED
            assert flow.bytes_sent == pytest.approx(flow.size_bytes, abs=1)

    def test_port_counter_symmetry(self):
        """Whatever one end transmits, the other end receives."""
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        )
        h1, h4 = topo.host("h1"), topo.host("h4")
        horse.submit_flows(
            [
                Flow(
                    headers=tcp_flow(h1.ip, h4.ip, 1000, 80),
                    src="h1",
                    dst="h4",
                    demand_bps=5e6,
                    size_bytes=2_000_000,
                )
            ]
        )
        horse.run()
        for link in topo.links:
            assert link.port_a.tx_bytes == link.port_b.rx_bytes
            assert link.port_b.tx_bytes == link.port_a.rx_bytes


class TestEngineAgreement:
    def test_blackhole_outcome_identical_across_engines(self):
        def run(engine_kind):
            topo = tree(2, 2)
            horse = Horse(
                topo,
                policies={
                    "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"},
                    "blackholing": [{"target": "h4"}],
                },
                config=HorseConfig(engine=engine_kind),
            )
            h1 = topo.host("h1")
            h3, h4 = topo.host("h3"), topo.host("h4")
            victim = Flow(
                headers=tcp_flow(h1.ip, h4.ip, 1000, 80),
                src="h1", dst="h4", demand_bps=5e6, size_bytes=500_000,
            )
            innocent = Flow(
                headers=tcp_flow(h1.ip, h3.ip, 1001, 80),
                src="h1", dst="h3", demand_bps=5e6, size_bytes=500_000,
            )
            horse.submit_flows([victim, innocent])
            horse.run(until=30.0)
            return victim, innocent

        for engine_kind in ("flow", "packet"):
            victim, innocent = run(engine_kind)
            assert victim.bytes_delivered == 0, engine_kind
            assert innocent.bytes_delivered >= 500_000 * 0.99, engine_kind

    def test_ecmp_path_choice_identical_across_engines(self):
        """SELECT groups hash identically, so both engines pick the same
        core for the same 5-tuple."""
        def core_entry_hits(engine_kind):
            topo = fat_tree(4)
            horse = Horse(
                topo,
                policies={"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}},
                config=HorseConfig(engine=engine_kind),
            )
            h1, h16 = topo.host("h1"), topo.host("h16")
            flow = Flow(
                headers=tcp_flow(h1.ip, h16.ip, 1234, 80),
                src="h1", dst="h16", demand_bps=50e6, size_bytes=200_000,
            )
            horse.submit_flows([flow])
            horse.run(until=30.0)
            horse.sync_statistics()
            used = set()
            for switch in topo.switches:
                if not switch.name.startswith("core"):
                    continue
                for port in switch.ports.values():
                    if port.rx_bytes > 0:
                        used.add(switch.name)
            return used

        assert core_entry_hits("flow") == core_entry_hits("packet")


class TestChurnScenario:
    def test_ixp_with_faults_policies_and_monitoring(self):
        """The whole stack at once: IXP + ECMP + blackhole + faults +
        monitor; the run stays consistent."""
        fabric = build_ixp(12, seed=9)
        topo = fabric.topology
        for s in topo.switches:
            attach_pipeline(s)
        sim = Simulator()
        controller = Controller()
        blackhole = BlackholeApp(
            targets=[topo.host(fabric.members[3].host_name).ip]
        )
        controller.add_app(blackhole)
        controller.add_app(ShortestPathApp(match_on="ip_dst"))
        channel = ControlChannel(sim, topo, controller=controller)
        engine = FlowLevelEngine(sim, topo, control=channel)
        channel.connect_engine(engine)
        controller.start()

        synth = IxpTraceSynthesizer(
            fabric,
            peak_total_bps=3e9,
            flow_config=FlowGenConfig(mean_flow_bytes=1e6,
                                      min_demand_bps=10e6),
        )
        flows = synth.steady_flows(
            RngRegistry(9).stream("churn"), duration_s=2.0, load_fraction=0.5
        )
        engine.submit_all(flows)

        injector = LinkFaultInjector(engine, random.Random(9), horizon_s=10.0)
        injector.watch(
            ("edge1", "core1"), FaultProfile(mtbf_s=3.0, mttr_s=0.5)
        )
        injector.start()
        sim.run(until=40.0)
        engine.finish()

        victim_host = fabric.members[3].host_name
        for flow in flows:
            if flow.dst == victim_host:
                assert flow.bytes_delivered == 0
            elif flow.state is FlowState.COMPLETED:
                assert flow.bytes_delivered == pytest.approx(
                    flow.size_bytes, abs=1
                )
        # The edge/core fabric stayed connected through failures (a
        # second core always exists), so non-victim flows delivered.
        delivered = [
            f for f in flows
            if f.dst != victim_host and f.state is FlowState.COMPLETED
        ]
        assert len(delivered) > 0.9 * len(
            [f for f in flows if f.dst != victim_host]
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_random_star_runs_conserve_bytes(seed):
    """Random uniform workloads on a star: mass conservation and
    capacity feasibility hold for every seed."""
    rng = random.Random(seed)
    topo = single_switch(4, capacity_bps=50e6)
    horse = Horse(
        topo,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(link_sample_interval_s=0.25),
    )
    tm = TrafficMatrix.uniform(
        [h.name for h in topo.hosts], total_bps=rng.uniform(10e6, 120e6)
    )
    generator = FlowGenerator(
        topo, rng, config=FlowGenConfig(mean_flow_bytes=100e3,
                                        min_demand_bps=5e6)
    )
    flows = generator.from_matrix(tm, horizon_s=1.0)
    horse.submit_flows(flows)
    result = horse.run(until=120.0)
    summary = result.engine_summary
    # Elastic flows: delivered == sent (the star cannot blackhole).
    elastic_sent = sum(f.bytes_sent for f in flows if f.elastic)
    elastic_delivered = sum(f.bytes_delivered for f in flows if f.elastic)
    assert elastic_delivered == pytest.approx(elastic_sent, rel=1e-9)
    # Sampled utilization never exceeds capacity.
    for value in result.link_max_utilization.values():
        assert value <= 1.0 + 1e-6
