"""Kernel tests: ordering, priorities, cancellation, periodic events."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.sim import (
    CallbackEvent,
    Event,
    HeapEventQueue,
    PeriodicEvent,
    Simulator,
    SortedListEventQueue,
)


class Recorder(Event):
    def __init__(self, time, log, tag, priority=0):
        super().__init__(time, priority=priority)
        self.log = log
        self.tag = tag

    def fire(self, sim):
        self.log.append((sim.now, self.tag))


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []
    for t in (3.0, 1.0, 2.0):
        sim.schedule(Recorder(t, log, t))
    sim.run()
    assert [tag for _, tag in log] == [1.0, 2.0, 3.0]
    assert sim.now == 3.0


def test_same_time_orders_by_priority_then_insertion():
    sim = Simulator()
    log = []
    sim.schedule(Recorder(1.0, log, "b", priority=5))
    sim.schedule(Recorder(1.0, log, "a", priority=-5))
    sim.schedule(Recorder(1.0, log, "c", priority=5))
    sim.run()
    assert [tag for _, tag in log] == ["a", "b", "c"]


def test_call_at_and_call_in():
    sim = Simulator()
    hits = []
    sim.call_at(2.0, lambda s: hits.append(("at", s.now)))
    sim.call_in(1.0, lambda s: hits.append(("in", s.now)))
    sim.run()
    assert hits == [("in", 1.0), ("at", 2.0)]


def test_callback_event_receives_args():
    sim = Simulator()
    hits = []
    sim.call_at(1.0, lambda s, a, b=0: hits.append((a, b)), 7, b=9)
    sim.run()
    assert hits == [(7, 9)]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(5.0, lambda s: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda s: None)
    with pytest.raises(SchedulingError):
        sim.call_in(-1.0, lambda s: None)


def test_negative_event_time_rejected():
    with pytest.raises(ValueError):
        Event(-1.0)


def test_cancelled_events_are_skipped():
    sim = Simulator()
    log = []
    event = sim.schedule(Recorder(1.0, log, "dead"))
    sim.schedule(Recorder(2.0, log, "alive"))
    event.cancel()
    sim.run()
    assert [tag for _, tag in log] == ["alive"]
    assert sim.fired_count == 1


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    log = []
    sim.schedule(Recorder(1.0, log, "early"))
    sim.schedule(Recorder(10.0, log, "late"))
    fired = sim.run(until=5.0)
    assert fired == 1
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert [tag for _, tag in log] == ["early", "late"]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_limit():
    sim = Simulator()
    log = []
    for t in range(5):
        sim.schedule(Recorder(float(t + 1), log, t))
    fired = sim.run(max_events=3)
    assert fired == 3
    assert len(log) == 3


def test_stop_inside_callback():
    sim = Simulator()
    log = []
    sim.call_at(1.0, lambda s: (log.append(1), s.stop()))
    sim.call_at(2.0, lambda s: log.append(2))
    sim.run()
    assert log == [1]
    assert sim.pending == 1


def test_periodic_event_repeats_until_bound():
    sim = Simulator()
    hits = []
    sim.every(1.0, lambda s, t: hits.append(t), start=1.0, until=3.5)
    # Periodic events are daemons: an open-ended run() would return at
    # once, so give the run an explicit horizon.
    sim.run(until=10.0)
    assert hits == [1.0, 2.0, 3.0]


def test_daemon_events_do_not_keep_run_alive():
    sim = Simulator()
    hits = []
    sim.every(1.0, lambda s, t: hits.append(t))
    sim.call_at(2.5, lambda s: None)  # live work until t=2.5
    sim.run()
    # Daemons tick while live work remains, then the run ends.
    assert hits == [1.0, 2.0]
    assert sim.now == 2.5


def test_periodic_stop_via_stopiteration():
    sim = Simulator()
    hits = []

    def cb(s, t):
        hits.append(t)
        if len(hits) >= 2:
            raise StopIteration

    sim.every(1.0, cb)
    sim.run(until=10.0)
    # StopIteration inside fire() ends that firing; the clone scheduled
    # before the raise means one extra tick can occur, never more.
    assert len(hits) <= 3


def test_periodic_invalid_interval():
    with pytest.raises(ValueError):
        PeriodicEvent(0.0, 0.0, lambda s, t: None)


def test_reset_clears_state():
    sim = Simulator()
    sim.call_at(1.0, lambda s: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.fired_count == 0


def test_trace_counts_event_types():
    sim = Simulator(trace=True)
    sim.call_at(1.0, lambda s: None)
    sim.call_at(2.0, lambda s: None)
    sim.run()
    assert sim.fired_by_type["CallbackEvent"] == 2


def test_nested_scheduling_during_run():
    sim = Simulator()
    log = []

    def outer(s):
        log.append("outer")
        s.call_in(1.0, lambda s2: log.append("inner"))

    sim.call_at(1.0, outer)
    sim.run()
    assert log == ["outer", "inner"]


@pytest.mark.parametrize("queue_cls", [HeapEventQueue, SortedListEventQueue])
def test_queue_implementations_pop_in_order(queue_cls):
    queue = queue_cls()
    events = [Event(t) for t in (5.0, 1.0, 3.0, 1.0)]
    for event in events:
        queue.push(event)
    times = [queue.pop().time for _ in range(len(events))]
    assert times == sorted(times)
    assert len(queue) == 0
    assert queue.peek() is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
def test_property_events_always_fire_sorted(times):
    sim = Simulator()
    log = []
    for t in times:
        sim.schedule(Recorder(t, log, t))
    sim.run()
    fired = [tag for _, tag in log]
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
def test_property_queue_parity(times):
    """Heap and sorted-list queues agree on the drain order."""
    heap, lst = HeapEventQueue(), SortedListEventQueue()
    for i, t in enumerate(times):
        a, b = Event(t), Event(t)
        a.seq = b.seq = i  # identical tie-break keys
        heap.push(a)
        lst.push(b)
    drained_heap = [heap.pop().time for _ in range(len(times))]
    drained_list = [lst.pop().time for _ in range(len(times))]
    assert drained_heap == drained_list == sorted(times)
