"""Kernel tests: ordering, priorities, cancellation, periodic events."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.sim import (
    CallbackEvent,
    Event,
    HeapEventQueue,
    PeriodicEvent,
    Simulator,
    SortedListEventQueue,
)


class Recorder(Event):
    def __init__(self, time, log, tag, priority=0):
        super().__init__(time, priority=priority)
        self.log = log
        self.tag = tag

    def fire(self, sim):
        self.log.append((sim.now, self.tag))


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []
    for t in (3.0, 1.0, 2.0):
        sim.schedule(Recorder(t, log, t))
    sim.run()
    assert [tag for _, tag in log] == [1.0, 2.0, 3.0]
    assert sim.now == 3.0


def test_same_time_orders_by_priority_then_insertion():
    sim = Simulator()
    log = []
    sim.schedule(Recorder(1.0, log, "b", priority=5))
    sim.schedule(Recorder(1.0, log, "a", priority=-5))
    sim.schedule(Recorder(1.0, log, "c", priority=5))
    sim.run()
    assert [tag for _, tag in log] == ["a", "b", "c"]


def test_call_at_and_call_in():
    sim = Simulator()
    hits = []
    sim.call_at(2.0, lambda s: hits.append(("at", s.now)))
    sim.call_in(1.0, lambda s: hits.append(("in", s.now)))
    sim.run()
    assert hits == [("in", 1.0), ("at", 2.0)]


def test_callback_event_receives_args():
    sim = Simulator()
    hits = []
    sim.call_at(1.0, lambda s, a, b=0: hits.append((a, b)), 7, b=9)
    sim.run()
    assert hits == [(7, 9)]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(5.0, lambda s: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda s: None)
    with pytest.raises(SchedulingError):
        sim.call_in(-1.0, lambda s: None)


def test_negative_event_time_rejected():
    with pytest.raises(ValueError):
        Event(-1.0)


def test_cancelled_events_are_skipped():
    sim = Simulator()
    log = []
    event = sim.schedule(Recorder(1.0, log, "dead"))
    sim.schedule(Recorder(2.0, log, "alive"))
    event.cancel()
    sim.run()
    assert [tag for _, tag in log] == ["alive"]
    assert sim.fired_count == 1


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    log = []
    sim.schedule(Recorder(1.0, log, "early"))
    sim.schedule(Recorder(10.0, log, "late"))
    fired = sim.run(until=5.0)
    assert fired == 1
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert [tag for _, tag in log] == ["early", "late"]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_limit():
    sim = Simulator()
    log = []
    for t in range(5):
        sim.schedule(Recorder(float(t + 1), log, t))
    fired = sim.run(max_events=3)
    assert fired == 3
    assert len(log) == 3


def test_stop_inside_callback():
    sim = Simulator()
    log = []
    sim.call_at(1.0, lambda s: (log.append(1), s.stop()))
    sim.call_at(2.0, lambda s: log.append(2))
    sim.run()
    assert log == [1]
    assert sim.pending == 1


def test_periodic_event_repeats_until_bound():
    sim = Simulator()
    hits = []
    sim.every(1.0, lambda s, t: hits.append(t), start=1.0, until=3.5)
    # Periodic events are daemons: an open-ended run() would return at
    # once, so give the run an explicit horizon.
    sim.run(until=10.0)
    assert hits == [1.0, 2.0, 3.0]


def test_daemon_events_do_not_keep_run_alive():
    sim = Simulator()
    hits = []
    sim.every(1.0, lambda s, t: hits.append(t))
    sim.call_at(2.5, lambda s: None)  # live work until t=2.5
    sim.run()
    # Daemons tick while live work remains, then the run ends.
    assert hits == [1.0, 2.0]
    assert sim.now == 2.5


def test_periodic_stop_via_stopiteration():
    sim = Simulator()
    hits = []

    def cb(s, t):
        hits.append(t)
        if len(hits) >= 2:
            raise StopIteration

    sim.every(1.0, cb)
    sim.run(until=10.0)
    # StopIteration inside fire() ends that firing; the clone scheduled
    # before the raise means one extra tick can occur, never more.
    assert len(hits) <= 3


def test_periodic_invalid_interval():
    with pytest.raises(ValueError):
        PeriodicEvent(0.0, 0.0, lambda s, t: None)


def test_reset_clears_state():
    sim = Simulator()
    sim.call_at(1.0, lambda s: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.fired_count == 0


def test_trace_counts_event_types():
    sim = Simulator(trace=True)
    sim.call_at(1.0, lambda s: None)
    sim.call_at(2.0, lambda s: None)
    sim.run()
    assert sim.fired_by_type["CallbackEvent"] == 2


def test_nested_scheduling_during_run():
    sim = Simulator()
    log = []

    def outer(s):
        log.append("outer")
        s.call_in(1.0, lambda s2: log.append("inner"))

    sim.call_at(1.0, outer)
    sim.run()
    assert log == ["outer", "inner"]


@pytest.mark.parametrize("queue_cls", [HeapEventQueue, SortedListEventQueue])
def test_queue_implementations_pop_in_order(queue_cls):
    queue = queue_cls()
    events = [Event(t) for t in (5.0, 1.0, 3.0, 1.0)]
    for event in events:
        queue.push(event)
    times = [queue.pop().time for _ in range(len(events))]
    assert times == sorted(times)
    assert len(queue) == 0
    assert queue.peek() is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
def test_property_events_always_fire_sorted(times):
    sim = Simulator()
    log = []
    for t in times:
        sim.schedule(Recorder(t, log, t))
    sim.run()
    fired = [tag for _, tag in log]
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
def test_property_queue_parity(times):
    """Heap and sorted-list queues agree on the drain order."""
    heap, lst = HeapEventQueue(), SortedListEventQueue()
    for i, t in enumerate(times):
        a, b = Event(t), Event(t)
        a.seq = b.seq = i  # identical tie-break keys
        heap.push(a)
        lst.push(b)
    drained_heap = [heap.pop().time for _ in range(len(times))]
    drained_list = [lst.pop().time for _ in range(len(times))]
    assert drained_heap == drained_list == sorted(times)


class TestPeriodicSeriesCancellation:
    def test_cancel_after_first_firing_stops_the_series(self):
        """Regression: the handle from every() used to be dead after the
        first firing (the queued clone was a different object)."""
        sim = Simulator()
        hits = []
        handle = sim.every(1.0, lambda s, t: hits.append(t))
        sim.call_at(2.5, lambda s: handle.cancel())
        sim.call_at(10.0, lambda s: None)  # keep the run alive
        sim.run()
        assert hits == [1.0, 2.0]

    def test_cancel_after_n_firings(self):
        sim = Simulator()
        hits = []
        handle = sim.every(1.0, lambda s, t: hits.append(t))
        sim.call_at(4.5, lambda s: handle.cancel())
        sim.call_at(20.0, lambda s: None)
        sim.run()
        assert hits == [1.0, 2.0, 3.0, 4.0]

    def test_cancel_before_first_firing(self):
        sim = Simulator()
        hits = []
        handle = sim.every(1.0, lambda s, t: hits.append(t))
        handle.cancel()
        sim.call_at(5.0, lambda s: None)
        sim.run()
        assert hits == []

    def test_callback_can_cancel_its_own_series(self):
        sim = Simulator()
        hits = []
        handle = sim.every(1.0, lambda s, t: (hits.append(t), handle.cancel()))
        sim.call_at(5.0, lambda s: None)
        sim.run()
        assert hits == [1.0]


class TestPendingAccounting:
    def test_pending_excludes_cancelled_events(self):
        sim = Simulator()
        live = sim.call_at(1.0, lambda s: None)
        dead = sim.call_at(2.0, lambda s: None)
        sim.cancel(dead)
        assert sim.pending == 1
        assert sim.pending_raw == 2
        assert live in (live,)  # silence unused warning

    def test_stats_snapshot_reports_live_and_raw(self):
        sim = Simulator()
        sim.call_at(1.0, lambda s: None)
        sim.cancel(sim.call_at(2.0, lambda s: None))
        snap = sim.stats_snapshot()
        assert snap["pending_events"] == 1
        assert snap["pending_raw"] == 2
        assert snap["queue_stale"] == 1
        assert "queue_compactions" in snap
        assert "queue_peak_size" in snap

    def test_pending_restored_after_pop(self):
        sim = Simulator()
        sim.cancel(sim.call_at(1.0, lambda s: None))
        sim.call_at(2.0, lambda s: None)
        sim.run()
        assert sim.pending == 0
        assert sim.pending_raw == 0
        assert sim.fired_count == 1


class TestSimulatorCancel:
    def test_cancel_returns_true_once(self):
        sim = Simulator()
        event = sim.call_at(1.0, lambda s: None)
        assert sim.cancel(event) is True
        assert sim.cancel(event) is False

    def test_mass_cancellation_triggers_compaction(self):
        queue = HeapEventQueue(compaction_threshold=0.5, min_compact_size=8)
        sim = Simulator(queue=queue)
        events = [sim.call_at(float(i + 1), lambda s: None) for i in range(64)]
        for event in events[: len(events) // 2 + 4]:
            sim.cancel(event)
        assert queue.compactions >= 1
        # Post-compaction cancels may leave tombstones, but always below
        # the threshold fraction of the (shrunken) heap.
        assert queue.stale <= 0.5 * len(queue) + 1
        # Live accounting survives the rebuild.
        assert sim.pending == queue.live
        fired = sim.run()
        assert fired == len(events) - (len(events) // 2 + 4)

    def test_compaction_disabled_with_none_threshold(self):
        queue = HeapEventQueue(compaction_threshold=None, min_compact_size=0)
        sim = Simulator(queue=queue)
        events = [sim.call_at(float(i + 1), lambda s: None) for i in range(32)]
        for event in events:
            sim.cancel(event)
        assert queue.compactions == 0
        assert len(queue) == 32  # tombstones linger until popped
        sim.run()
        assert sim.fired_count == 0


class TestReschedule:
    def test_reschedule_queued_event_moves_it(self):
        sim = Simulator()
        log = []
        event = sim.schedule(Recorder(5.0, log, "x"))
        handle = sim.reschedule(event, 1.0)
        sim.run()
        assert log == [(1.0, "x")]
        assert handle.time == 1.0

    def test_reschedule_unchanged_time_is_noop(self):
        sim = Simulator()
        event = sim.call_at(3.0, lambda s: None)
        before = sim.pending_raw
        handle = sim.reschedule(event, 3.0)
        assert handle is event
        assert sim.pending_raw == before

    def test_reschedule_fired_event_reuses_the_object(self):
        sim = Simulator()
        log = []

        def cb(s):
            log.append(s.now)
            if len(log) < 3:
                s.reschedule(timer, s.now + 1.0)

        timer = sim.call_at(1.0, cb)
        sim.run()
        assert log == [1.0, 2.0, 3.0]
        assert sim.pending_raw == 0

    def test_reschedule_into_past_raises(self):
        sim = Simulator()
        event = sim.call_at(10.0, lambda s: None)
        sim.call_at(5.0, lambda s: None)
        sim.run(until=6.0)
        with pytest.raises(SchedulingError):
            sim.reschedule(event, 1.0)

    def test_reschedule_returns_live_handle_for_queued_event(self):
        sim = Simulator()
        log = []
        stale = sim.schedule(Recorder(5.0, log, "a"))
        handle = sim.reschedule(stale, 7.0)
        assert stale.cancelled  # the argument became a tombstone
        assert not handle.cancelled
        sim.run()
        assert log == [(7.0, "a")]

    def test_reschedule_cancelled_unqueued_event_revives_it(self):
        sim = Simulator()
        log = []
        event = Recorder(2.0, log, "z")
        event.cancel()
        sim.reschedule(event, 3.0)
        sim.run()
        assert log == [(3.0, "z")]
