"""Address type tests: MAC, IPv4, prefixes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net import (
    IPv4Address,
    IPv4Network,
    MacAddress,
    ip_from_index,
    mac_from_index,
)


class TestMacAddress:
    def test_parse_and_str_roundtrip(self):
        mac = MacAddress("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"
        assert int(mac) == 0xAABBCCDDEEFF

    def test_dash_separator_accepted(self):
        assert MacAddress("aa-bb-cc-dd-ee-ff") == MacAddress("aa:bb:cc:dd:ee:ff")

    def test_from_int(self):
        assert str(MacAddress(1)) == "00:00:00:00:00:01"

    def test_equality_with_string_and_int(self):
        mac = MacAddress(42)
        assert mac == 42
        assert mac == "00:00:00:00:00:2a"
        assert mac != 43

    def test_broadcast_and_multicast(self):
        assert MacAddress.broadcast().is_broadcast
        assert MacAddress.broadcast().is_multicast
        assert MacAddress("01:00:5e:00:00:01").is_multicast
        assert not MacAddress("00:00:5e:00:00:01").is_multicast

    def test_hashable_and_ordered(self):
        macs = {MacAddress(1), MacAddress(1), MacAddress(2)}
        assert len(macs) == 2
        assert MacAddress(1) < MacAddress(2)

    @pytest.mark.parametrize(
        "bad", ["", "aa:bb", "gg:bb:cc:dd:ee:ff", "aa:bb:cc:dd:ee:ff:00"]
    )
    def test_invalid_strings(self, bad):
        with pytest.raises(AddressError):
            MacAddress(bad)

    def test_out_of_range_int(self):
        with pytest.raises(AddressError):
            MacAddress(1 << 48)
        with pytest.raises(AddressError):
            MacAddress(-1)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_property_roundtrip(self, value):
        assert int(MacAddress(str(MacAddress(value)))) == value


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        addr = IPv4Address("192.168.1.200")
        assert str(addr) == "192.168.1.200"
        assert int(addr) == (192 << 24) | (168 << 16) | (1 << 8) | 200

    def test_arithmetic(self):
        assert IPv4Address("10.0.0.1") + 1 == IPv4Address("10.0.0.2")

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.256", "a.b.c.d", "1.2.3.4.5"])
    def test_invalid_strings(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_property_roundtrip(self, value):
        assert int(IPv4Address(str(IPv4Address(value)))) == value


class TestIPv4Network:
    def test_parse_normalizes_to_network_address(self):
        net = IPv4Network("10.1.2.3/24")
        assert str(net) == "10.1.2.0/24"
        assert net.num_addresses == 256

    def test_contains(self):
        net = IPv4Network("10.0.0.0/8")
        assert net.contains("10.255.255.255")
        assert IPv4Address("10.0.0.1") in net
        assert not net.contains("11.0.0.0")

    def test_slash_32_contains_only_itself(self):
        net = IPv4Network("10.0.0.5/32")
        assert net.contains("10.0.0.5")
        assert not net.contains("10.0.0.6")

    def test_slash_zero_contains_everything(self):
        net = IPv4Network("0.0.0.0/0")
        assert net.contains("255.255.255.255")

    def test_hosts_skips_network_and_broadcast(self):
        hosts = list(IPv4Network("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_hosts_slash_31(self):
        assert len(list(IPv4Network("10.0.0.0/31").hosts())) == 2

    def test_tuple_constructor(self):
        assert IPv4Network(("10.0.0.0", 16)) == IPv4Network("10.0.0.0/16")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x"])
    def test_invalid(self, bad):
        with pytest.raises(AddressError):
            IPv4Network(bad)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_property_network_contains_its_base(self, value, prefix_len):
        net = IPv4Network((value, prefix_len))
        assert net.contains(net.network)


class TestDeterministicAllocation:
    def test_mac_from_index_unique_and_local(self):
        macs = [mac_from_index(i) for i in range(100)]
        assert len(set(macs)) == 100
        assert all((int(m) >> 40) & 0x02 for m in macs)

    def test_ip_from_index(self):
        assert str(ip_from_index(0)) == "10.0.0.1"
        assert str(ip_from_index(255)) == "10.0.1.0"

    def test_allocation_bounds(self):
        with pytest.raises(AddressError):
            mac_from_index(-1)
        with pytest.raises(AddressError):
            ip_from_index(1 << 32)
