"""IXP model tests: members, route server, fabric, trace synthesis."""

import random

import pytest

from repro.errors import ControlPlaneError, TrafficError
from repro.ixp import (
    ExportPolicy,
    Member,
    RouteServer,
    build_ixp,
    synthesize_members,
)
from repro.net import IPv4Address, IPv4Network
from repro.traffic import IxpTraceSynthesizer, ixp_gravity_matrix
from repro.sim.rng import RngRegistry


@pytest.fixture
def rng():
    return random.Random(7)


class TestMembers:
    def test_population_shape(self, rng):
        members = synthesize_members(50, rng)
        assert len(members) == 50
        weights = [m.weight for m in members]
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[-1]  # Zipf skew
        # Port classes follow rank.
        assert members[0].port_bps == 100e9
        assert members[-1].port_bps == 1e9

    def test_each_member_has_prefix_and_kind(self, rng):
        members = synthesize_members(20, rng)
        kinds = {m.kind for m in members}
        assert kinds <= {"content", "eyeball", "transit"}
        assert all(m.prefixes for m in members)
        asns = [m.asn for m in members]
        assert len(set(asns)) == 20

    def test_minimum_population(self, rng):
        with pytest.raises(TrafficError):
            synthesize_members(1, rng)

    def test_member_validation(self):
        with pytest.raises(TrafficError):
            Member(asn=1, name="x", weight=-1, port_bps=1e9)
        with pytest.raises(TrafficError):
            Member(asn=1, name="x", weight=0.1, port_bps=0)


class TestRouteServer:
    def _two_members(self):
        a = Member(asn=1, name="a", weight=0.5, port_bps=1e9,
                   prefixes=[IPv4Network("10.1.0.0/16")])
        b = Member(asn=2, name="b", weight=0.5, port_bps=1e9,
                   prefixes=[IPv4Network("10.2.0.0/16")])
        rs = RouteServer()
        rs.register(a)
        rs.register(b)
        return rs, a, b

    def test_open_peering_by_default(self):
        rs, a, b = self._two_members()
        assert rs.peering_allowed(1, 2)
        assert rs.peering_allowed(2, 1)
        assert not rs.peering_allowed(1, 1)

    def test_block_policy(self):
        rs, a, b = self._two_members()
        rs.set_export_policy(2, ExportPolicy("block", {1}))
        # b no longer exports to a: a cannot send to b.
        assert not rs.peering_allowed(1, 2)
        assert rs.peering_allowed(2, 1)

    def test_allow_policy(self):
        rs, a, b = self._two_members()
        rs.set_export_policy(2, ExportPolicy("allow", set()))
        assert not rs.peering_allowed(1, 2)
        rs.set_export_policy(2, ExportPolicy("allow", {1}))
        assert rs.peering_allowed(1, 2)

    def test_rib_respects_export_policy(self):
        rs, a, b = self._two_members()
        assert len(rs.rib_for(1)) == 1
        rs.set_export_policy(2, ExportPolicy("block", {1}))
        assert rs.rib_for(1) == []

    def test_origin_longest_prefix_match(self):
        rs, a, b = self._two_members()
        rs.announce(1, IPv4Network("10.2.128.0/17"))  # more specific than b
        assert rs.origin_of(IPv4Address("10.2.200.1")) == 1
        assert rs.origin_of(IPv4Address("10.2.1.1")) == 2
        assert rs.origin_of(IPv4Address("99.9.9.9")) is None

    def test_withdraw_and_duplicate_register(self):
        rs, a, b = self._two_members()
        rs.withdraw(1)
        assert len(rs) == 1
        with pytest.raises(ControlPlaneError):
            rs.peering_allowed(1, 2)
        with pytest.raises(ControlPlaneError):
            rs.register(b)

    def test_invalid_export_mode(self):
        with pytest.raises(ControlPlaneError):
            ExportPolicy("maybe")

    def test_peering_matrix_uses_host_names(self):
        rs, a, b = self._two_members()
        a.host_name, b.host_name = "m1", "m2"
        matrix = rs.peering_matrix()
        assert matrix[("m1", "m2")] is True
        assert len(matrix) == 2


class TestFabric:
    def test_build_shapes(self):
        fabric = build_ixp(24, seed=3)
        summary = fabric.summary()
        assert summary["members"] == 24
        assert summary["edges"] >= 2 and summary["cores"] >= 2
        # Every member router reaches every other.
        topo = fabric.topology
        first, last = fabric.members[0], fabric.members[-1]
        assert topo.shortest_path(first.host_name, last.host_name)

    def test_members_registered_at_route_server(self):
        fabric = build_ixp(8, seed=0)
        assert len(fabric.route_server) == 8
        assert all(m.host_name for m in fabric.members)

    def test_core_directions_enumeration(self):
        fabric = build_ixp(8, num_edges=2, num_cores=2, seed=0)
        cores = list(fabric.core_directions())
        # 2 edges x 2 cores x 2 directions.
        assert len(cores) == 8

    def test_member_weights_exported(self):
        fabric = build_ixp(8, seed=0)
        weights = fabric.member_weights()
        assert len(weights) == 8
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_deterministic_by_seed(self):
        a = build_ixp(16, seed=11)
        b = build_ixp(16, seed=11)
        assert [m.kind for m in a.members] == [m.kind for m in b.members]

    def test_explicit_members(self):
        members = [
            Member(asn=10, name="x", weight=0.6, port_bps=10e9),
            Member(asn=20, name="y", weight=0.4, port_bps=1e9),
        ]
        fabric = build_ixp(0, members=members, seed=0)
        assert {m.asn for m in fabric.members} == {10, 20}

    def test_member_lookup_by_host(self):
        fabric = build_ixp(4, seed=0)
        member = fabric.members[0]
        assert fabric.member_by_host(member.host_name) is member
        with pytest.raises(Exception):
            fabric.member_by_host("ghost")


class TestTraceSynthesis:
    def test_gravity_matrix_mass_and_peering(self):
        fabric = build_ixp(12, seed=2)
        tm = ixp_gravity_matrix(fabric, total_bps=10e9)
        assert tm.total_bps == pytest.approx(10e9)
        # Restrictive peering removes pairs.
        victim = fabric.members[0]
        fabric.route_server.set_export_policy(
            victim.asn, ExportPolicy("allow", set())
        )
        restricted = ixp_gravity_matrix(fabric, total_bps=10e9)
        to_victim = sum(
            r for (s, d), r in restricted.pairs() if d == victim.host_name
        )
        assert to_victim == 0.0

    def test_role_asymmetry_content_to_eyeball(self):
        fabric = build_ixp(30, seed=4)
        tm = ixp_gravity_matrix(fabric, total_bps=1e9)
        content = [m for m in fabric.members if m.kind == "content"]
        eyeball = [m for m in fabric.members if m.kind == "eyeball"]
        if content and eyeball:
            c, e = content[0], eyeball[0]
            assert tm.get(c.host_name, e.host_name) > tm.get(
                e.host_name, c.host_name
            )

    def test_trace_generation(self):
        fabric = build_ixp(8, seed=5)
        synth = IxpTraceSynthesizer(fabric, peak_total_bps=5e9)
        rng = RngRegistry(3).stream("t")
        flows = synth.trace(rng, epochs=3, epoch_duration_s=2.0)
        assert flows
        assert flows[-1].start_time < 6.0
        hosts = {m.host_name for m in fabric.members}
        assert all(f.src in hosts and f.dst in hosts for f in flows)

    def test_steady_flows_load_scaling(self):
        fabric = build_ixp(8, seed=5)
        synth = IxpTraceSynthesizer(fabric, peak_total_bps=5e9)
        rng_a = RngRegistry(3).stream("a")
        rng_b = RngRegistry(3).stream("b")
        low = synth.steady_flows(rng_a, duration_s=1.0, load_fraction=0.1)
        high = synth.steady_flows(rng_b, duration_s=1.0, load_fraction=1.0)
        assert len(high) > len(low) * 3

    def test_invalid_total(self):
        fabric = build_ixp(4, seed=0)
        with pytest.raises(TrafficError):
            ixp_gravity_matrix(fabric, total_bps=0)
