"""Traffic subsystem tests: distributions, matrices, generators, replay."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.net.generators import single_switch
from repro.traffic import (
    BoundedPareto,
    Constant,
    Empirical,
    Exponential,
    FlowGenConfig,
    FlowGenerator,
    LogNormal,
    MiceElephants,
    TrafficMatrix,
    TrafficReplay,
    Uniform,
    diurnal_profile,
    weighted_choice,
    zipf_weights,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestDistributions:
    def test_constant(self, rng):
        sampler = Constant(rng, 42.0)
        assert [sampler() for _ in range(3)] == [42.0, 42.0, 42.0]

    def test_uniform_bounds(self, rng):
        sampler = Uniform(rng, 1.0, 2.0)
        samples = [sampler() for _ in range(200)]
        assert all(1.0 <= s <= 2.0 for s in samples)

    def test_exponential_mean(self, rng):
        sampler = Exponential(rng, mean=5.0)
        samples = [sampler() for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(5.0, rel=0.1)

    def test_lognormal_mean(self, rng):
        sampler = LogNormal(rng, mean=100.0, sigma=0.8)
        samples = [sampler() for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.1)

    def test_bounded_pareto_range(self, rng):
        sampler = BoundedPareto(rng, alpha=1.2, minimum=10.0, maximum=1000.0)
        samples = [sampler() for _ in range(2000)]
        assert all(10.0 <= s <= 1000.0 for s in samples)
        # Heavy tail: some samples land well above the minimum.
        assert max(samples) > 100.0

    def test_empirical_interpolates(self, rng):
        sampler = Empirical(rng, [(10.0, 0.5), (20.0, 1.0)])
        samples = [sampler() for _ in range(500)]
        assert all(10.0 <= s <= 20.0 for s in samples)

    def test_empirical_validation(self, rng):
        with pytest.raises(TrafficError):
            Empirical(rng, [])
        with pytest.raises(TrafficError):
            Empirical(rng, [(1.0, 0.9)])  # doesn't end at 1.0
        with pytest.raises(TrafficError):
            Empirical(rng, [(1.0, 0.7), (2.0, 0.3)])  # unsorted

    def test_mice_elephants_bimodal(self, rng):
        sampler = MiceElephants(rng, mice_fraction=0.8)
        samples = [sampler() for _ in range(5000)]
        small = sum(1 for s in samples if s < 1e6)
        assert 0.7 < small / len(samples) < 0.9
        assert max(samples) > 1e6  # elephants exist

    def test_invalid_parameters(self, rng):
        with pytest.raises(TrafficError):
            Constant(rng, 0)
        with pytest.raises(TrafficError):
            Uniform(rng, 5, 1)
        with pytest.raises(TrafficError):
            Exponential(rng, 0)
        with pytest.raises(TrafficError):
            BoundedPareto(rng, 1.0, 10, 5)

    def test_weighted_choice_respects_weights(self, rng):
        picks = [
            weighted_choice(rng, ["a", "b"], [0.99, 0.01]) for _ in range(500)
        ]
        assert picks.count("a") > 400

    def test_zipf_weights_sum_and_skew(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[-1] * 5


class TestTrafficMatrix:
    def test_uniform_total(self):
        tm = TrafficMatrix.uniform(["a", "b", "c"], total_bps=6e6)
        assert tm.total_bps == pytest.approx(6e6)
        assert len(tm) == 6
        assert tm.get("a", "b") == pytest.approx(1e6)

    def test_gravity_proportional_to_weights(self):
        tm = TrafficMatrix.gravity({"big": 10.0, "mid": 5.0, "small": 1.0},
                                   total_bps=1e9)
        assert tm.total_bps == pytest.approx(1e9)
        assert tm.get("big", "mid") > tm.get("small", "mid")
        # Symmetric weights give symmetric demands.
        assert tm.get("big", "small") == pytest.approx(tm.get("small", "big"))

    def test_hotspot_concentrates_traffic(self):
        hosts = [f"h{i}" for i in range(6)]
        tm = TrafficMatrix.hotspot(hosts, ["h0"], total_bps=1e6,
                                   hot_fraction=0.9)
        to_hot = sum(r for (s, d), r in tm.pairs() if d == "h0")
        assert to_hot > 0.8e6

    def test_random_matrix_normalized(self):
        tm = TrafficMatrix.random(["a", "b", "c", "d"], total_bps=5e6,
                                  rng=random.Random(1))
        assert tm.total_bps == pytest.approx(5e6)

    def test_scaled_and_filtered(self):
        tm = TrafficMatrix.uniform(["a", "b"], total_bps=2e6)
        assert tm.scaled(0.5).total_bps == pytest.approx(1e6)
        filtered = tm.filtered({("a", "b"): True})
        assert len(filtered) == 1

    def test_set_get_remove(self):
        tm = TrafficMatrix()
        tm.set("a", "b", 100.0)
        assert tm.get("a", "b") == 100.0
        tm.set("a", "b", 0)
        assert len(tm) == 0
        assert tm.get("a", "b") == 0.0

    def test_validation(self):
        tm = TrafficMatrix()
        with pytest.raises(TrafficError):
            tm.set("a", "a", 1.0)
        with pytest.raises(TrafficError):
            tm.set("a", "b", -1.0)
        with pytest.raises(TrafficError):
            TrafficMatrix.uniform(["only"], 1e6)

    def test_pairs_deterministic_order(self):
        tm = TrafficMatrix.uniform(["c", "a", "b"], total_bps=1.0)
        pairs = [p for p, _ in tm.pairs()]
        assert pairs == sorted(pairs)


class TestFlowGenerator:
    def test_poisson_offered_load_matches_matrix(self, rng):
        topo = single_switch(4)
        hosts = [h.name for h in topo.hosts]
        tm = TrafficMatrix.uniform(hosts, total_bps=80e6)
        config = FlowGenConfig(mean_flow_bytes=100e3)
        generator = FlowGenerator(topo, rng, config=config)
        horizon = 20.0
        flows = generator.from_matrix(tm, horizon_s=horizon)
        offered = sum(f.size_bytes for f in flows) * 8 / horizon
        assert offered == pytest.approx(80e6, rel=0.35)

    def test_flows_sorted_and_within_horizon(self, rng):
        topo = single_switch(3)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 10e6)
        flows = FlowGenerator(topo, rng).from_matrix(tm, horizon_s=5.0)
        times = [f.start_time for f in flows]
        assert times == sorted(times)
        assert all(0 <= t < 5.0 for t in times)

    def test_headers_carry_host_addresses(self, rng):
        topo = single_switch(2)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 10e6)
        flows = FlowGenerator(topo, rng).from_matrix(tm, horizon_s=2.0)
        flow = flows[0]
        src = topo.host(flow.src)
        assert flow.headers.ip_src == src.ip
        assert flow.headers.eth_src == src.mac
        assert flow.headers.tp_dst in {80, 443, 53, 22, 1935}

    def test_udp_fraction_respected(self, rng):
        topo = single_switch(3)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 50e6)
        config = FlowGenConfig(udp_fraction=0.5, mean_flow_bytes=20e3)
        flows = FlowGenerator(topo, rng, config=config).from_matrix(tm, 5.0)
        udp = sum(1 for f in flows if not f.elastic)
        assert 0.3 < udp / len(flows) < 0.7

    def test_constant_rate_flows(self, rng):
        topo = single_switch(3)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 6e6)
        flows = FlowGenerator(topo, rng).constant_rate_flows(tm, duration_s=4.0)
        assert len(flows) == 6
        assert all(f.duration_s == 4.0 for f in flows)
        assert sum(f.demand_bps for f in flows) == pytest.approx(6e6)

    def test_invalid_horizon(self, rng):
        topo = single_switch(2)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 1e6)
        with pytest.raises(TrafficError):
            FlowGenerator(topo, rng).from_matrix(tm, horizon_s=0)


class TestReplay:
    def test_diurnal_profile_shape(self):
        values = [diurnal_profile(h) for h in range(24)]
        assert all(0.25 <= v <= 1.0 for v in values)
        # Evening peak beats the night trough.
        assert diurnal_profile(21) > 2 * diurnal_profile(4)

    def test_epochs_scale_the_matrix(self):
        tm = TrafficMatrix.uniform(["a", "b"], total_bps=1e6)
        replay = TrafficReplay(tm, epochs=4, epoch_duration_s=10.0)
        assert replay.total_duration_s == 40.0
        scales = [e.scale for e in replay.epochs]
        for i, scale in enumerate(scales):
            assert replay.matrix_for_epoch(i).total_bps == pytest.approx(
                1e6 * scale
            )

    def test_generated_flows_cover_every_epoch(self, rng):
        topo = single_switch(3)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 20e6)
        replay = TrafficReplay(tm, epochs=3, epoch_duration_s=5.0)
        flows = replay.generate_flows(topo, rng)
        for i in range(3):
            in_epoch = [
                f for f in flows if 5.0 * i <= f.start_time < 5.0 * (i + 1)
            ]
            assert in_epoch, f"no flows in epoch {i}"

    def test_constant_flows_one_per_pair_per_epoch(self, rng):
        topo = single_switch(3)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 6e6)
        replay = TrafficReplay(tm, epochs=2, epoch_duration_s=5.0)
        flows = replay.generate_constant_flows(topo, rng)
        assert len(flows) == 6 * 2

    def test_replay_validation(self):
        tm = TrafficMatrix.uniform(["a", "b"], 1.0)
        with pytest.raises(TrafficError):
            TrafficReplay(tm, epochs=0)
        with pytest.raises(TrafficError):
            TrafficReplay(tm, epoch_duration_s=0)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.floats(min_value=1e3, max_value=1e12))
def test_property_uniform_matrix_mass_conserved(n, total):
    hosts = [f"h{i}" for i in range(n)]
    tm = TrafficMatrix.uniform(hosts, total_bps=total)
    assert tm.total_bps == pytest.approx(total, rel=1e-9)
    assert len(tm) == n * (n - 1)


class TestAppWeights:
    def test_qos_weights_assigned_by_application(self):
        import random

        from repro.openflow.headers import AppPort

        topo = single_switch(3)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 50e6)
        config = FlowGenConfig(
            mean_flow_bytes=50e3,
            app_weights={AppPort.RTMP: 4.0, AppPort.DNS: 0.5},
        )
        flows = FlowGenerator(topo, random.Random(4), config=config).from_matrix(
            tm, horizon_s=5.0
        )
        by_app = {}
        for flow in flows:
            by_app.setdefault(flow.headers.tp_dst, set()).add(flow.weight)
        if AppPort.RTMP in by_app:
            assert by_app[AppPort.RTMP] == {4.0}
        if AppPort.DNS in by_app:
            assert by_app[AppPort.DNS] == {0.5}
        if AppPort.HTTP in by_app:
            assert by_app[AppPort.HTTP] == {1.0}
