"""Topology serialization tests: JSON round trip, GraphML export."""

import io
import json

import pytest

from repro.errors import TopologyError
from repro.net import (
    Topology,
    load_topology,
    save_graphml,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.net.generators import fat_tree, leaf_spine, linear


class TestJsonRoundTrip:
    @pytest.mark.parametrize(
        "factory", [lambda: linear(3, hosts_per_switch=2), lambda: fat_tree(4)]
    )
    def test_round_trip_preserves_structure(self, factory):
        original = factory()
        rebuilt = topology_from_dict(topology_to_dict(original))
        assert rebuilt.summary() == original.summary()
        # Node identity, addressing, and dpids survive.
        for host in original.hosts:
            twin = rebuilt.host(host.name)
            assert twin.mac == host.mac
            assert twin.ip == host.ip
        for switch in original.switches:
            assert rebuilt.switch(switch.name).dpid == switch.dpid

    def test_port_numbers_preserved(self):
        original = leaf_spine(2, 2)
        rebuilt = topology_from_dict(topology_to_dict(original))
        for link in original.links:
            a, b = link.port_a, link.port_b
            twins = rebuilt.links_between(a.node.name, b.node.name)
            numbers = {
                (t.port_a.node.name, t.port_a.number, t.port_b.number)
                for t in twins
            }
            assert (a.node.name, a.number, b.number) in numbers or (
                b.node.name,
                b.number,
                a.number,
            ) in numbers

    def test_link_capacity_delay_and_state(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_switch("s2")
        link = topo.add_link("s1", "s2", capacity_bps=42e9, delay_s=0.005)
        link.set_up(False)
        rebuilt = topology_from_dict(topology_to_dict(topo))
        twin = rebuilt.link_between("s1", "s2")
        assert twin.capacity_bps == 42e9
        assert twin.delay_s == 0.005
        assert not twin.up

    def test_metadata_round_trip(self):
        topo = Topology()
        switch = topo.add_switch("s1")
        switch.metadata["tier"] = "core"
        host = topo.add_host("h1")
        host.metadata["asn"] = 64512
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert rebuilt.switch("s1").metadata["tier"] == "core"
        assert rebuilt.host("h1").metadata["asn"] == 64512

    def test_file_round_trip(self, tmp_path):
        original = linear(2)
        path = str(tmp_path / "topo.json")
        save_topology(original, path)
        rebuilt = load_topology(path)
        assert rebuilt.summary() == original.summary()

    def test_stream_round_trip(self):
        original = linear(2)
        buffer = io.StringIO()
        save_topology(original, buffer)
        buffer.seek(0)
        rebuilt = load_topology(buffer)
        assert rebuilt.summary() == original.summary()

    def test_version_checked(self):
        doc = topology_to_dict(linear(2))
        doc["version"] = 99
        with pytest.raises(TopologyError):
            topology_from_dict(doc)

    def test_unknown_node_kind_rejected(self):
        doc = {
            "version": 1,
            "name": "x",
            "nodes": [{"name": "r1", "kind": "router"}],
            "links": [],
        }
        with pytest.raises(TopologyError):
            topology_from_dict(doc)

    def test_document_is_json_serializable(self):
        doc = topology_to_dict(fat_tree(4))
        text = json.dumps(doc)
        assert json.loads(text) == doc


class TestGraphml:
    def test_graphml_export_loads_in_networkx(self, tmp_path):
        import networkx as nx

        topo = fat_tree(4)
        path = str(tmp_path / "topo.graphml")
        save_graphml(topo, path)
        graph = nx.read_graphml(path)
        assert graph.number_of_nodes() == 36
        assert graph.number_of_edges() == 48
        kinds = {data["kind"] for _, data in graph.nodes(data=True)}
        assert kinds == {"host", "switch"}
