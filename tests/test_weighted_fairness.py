"""Weighted max-min fairness tests: solvers and engine integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim import Flow, FlowLevelEngine
from repro.flowsim.fairshare import FlowDemand, solve, solve_arrays
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator


class TestWeightedSolver:
    def test_weights_split_a_link_proportionally(self):
        flows = [
            FlowDemand("gold", 100, ["l"], weight=3.0),
            FlowDemand("bronze", 100, ["l"], weight=1.0),
        ]
        alloc = solve(flows, {"l": 12})
        assert alloc["gold"] == pytest.approx(9.0)
        assert alloc["bronze"] == pytest.approx(3.0)

    def test_demand_limited_heavy_flow_releases_share(self):
        flows = [
            FlowDemand("gold", 4, ["l"], weight=3.0),  # wants little
            FlowDemand("bronze", 100, ["l"], weight=1.0),
        ]
        alloc = solve(flows, {"l": 12})
        assert alloc["gold"] == pytest.approx(4.0)
        assert alloc["bronze"] == pytest.approx(8.0)

    def test_equal_weights_reduce_to_plain_max_min(self):
        weighted = solve(
            [
                FlowDemand("a", 100, ["l"], weight=2.0),
                FlowDemand("b", 100, ["l"], weight=2.0),
            ],
            {"l": 10},
        )
        assert weighted["a"] == pytest.approx(5.0)
        assert weighted["b"] == pytest.approx(5.0)

    def test_weights_across_multiple_bottlenecks(self):
        # gold and bronze share l1; bronze alone on l2 (tighter).
        flows = [
            FlowDemand("gold", 100, ["l1"], weight=2.0),
            FlowDemand("bronze", 100, ["l1", "l2"], weight=1.0),
        ]
        alloc = solve(flows, {"l1": 30, "l2": 5})
        assert alloc["bronze"] == pytest.approx(5.0)  # l2 binds first
        assert alloc["gold"] == pytest.approx(25.0)  # takes the rest of l1

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            FlowDemand("x", 1, [], weight=0)

    def test_vectorized_weighted_parity_simple(self):
        demand = np.array([100.0, 100.0])
        capacity = np.array([12.0])
        flow_of = np.array([0, 1], dtype=np.intp)
        link_of = np.array([0, 0], dtype=np.intp)
        alloc = solve_arrays(
            demand, capacity, flow_of, link_of, weight=np.array([3.0, 1.0])
        )
        assert alloc[0] == pytest.approx(9.0)
        assert alloc[1] == pytest.approx(3.0)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_weighted_scalar_vector_parity(seed):
    import random

    rng = random.Random(seed)
    num_links = rng.randint(1, 8)
    num_flows = rng.randint(1, 25)
    caps = {f"l{i}": rng.uniform(1.0, 500.0) for i in range(num_links)}
    flows = []
    for i in range(num_flows):
        links = rng.sample(sorted(caps), rng.randint(0, min(4, num_links)))
        flows.append(
            FlowDemand(
                i,
                rng.uniform(0.1, 300.0),
                links,
                weight=rng.choice([0.5, 1.0, 2.0, 4.0]),
            )
        )
    ref = solve(flows, caps)
    link_index = {name: j for j, name in enumerate(sorted(caps))}
    fo, lo = [], []
    for i, flow in enumerate(flows):
        for link in flow.links:
            fo.append(i)
            lo.append(link_index[link])
    vec = solve_arrays(
        np.asarray([f.demand_bps for f in flows]),
        np.asarray([caps[k] for k in sorted(caps)]),
        np.asarray(fo, dtype=np.intp),
        np.asarray(lo, dtype=np.intp),
        weight=np.asarray([f.weight for f in flows]),
    )
    for i, flow in enumerate(flows):
        assert vec[i] == pytest.approx(ref[flow.flow_id], rel=1e-4, abs=1e-4)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_weighted_feasibility(seed):
    import random

    rng = random.Random(seed)
    caps = {f"l{i}": rng.uniform(1.0, 100.0) for i in range(rng.randint(1, 6))}
    flows = [
        FlowDemand(
            i,
            rng.uniform(0.1, 200.0),
            rng.sample(sorted(caps), rng.randint(0, len(caps))),
            weight=rng.uniform(0.1, 8.0),
        )
        for i in range(rng.randint(1, 20))
    ]
    alloc = solve(flows, caps)
    for flow in flows:
        assert -1e-9 <= alloc[flow.flow_id] <= flow.demand_bps + 1e-6
    for link, cap in caps.items():
        used = sum(alloc[f.flow_id] for f in flows if link in f.links)
        assert used <= cap * (1 + 1e-6) + 1e-6


class TestEngineWeights:
    def test_weighted_flows_share_bottleneck_by_weight(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        h1, h2 = line2.host("h1"), line2.host("h2")
        gold = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
            src="h1", dst="h2", demand_bps=100e6, duration_s=4.0, weight=4.0,
        )
        bronze = Flow(
            headers=tcp_flow(h1.ip, h2.ip, 1001, 80),
            src="h1", dst="h2", demand_bps=100e6, duration_s=4.0, weight=1.0,
        )
        engine.submit_all([gold, bronze])
        sim.run(until=2.0)
        # 10 Mb/s link split 8/2.
        assert gold.rate_bps == pytest.approx(8e6)
        assert bronze.rate_bps == pytest.approx(2e6)

    def test_vectorized_path_respects_weights(self, star4):
        """Enough flows to trip the vector solver (threshold 48)."""
        sim = Simulator()
        from repro.openflow import ApplyActions, Match, Output

        # Everyone sends to h2; install direct rule on s1.
        dst = star4.host("h2")
        out = star4.egress_port("s1", "h2")
        star4.switch("s1").pipeline.install(
            Match(ip_dst=dst.ip),
            (ApplyActions((Output(out.number),)),),
            priority=10,
        )
        engine = FlowLevelEngine(sim, star4)
        flows = []
        for i in range(60):
            src = star4.host("h1" if i % 2 else "h3")
            weight = 3.0 if i < 30 else 1.0
            flows.append(
                Flow(
                    headers=tcp_flow(src.ip, dst.ip, 2000 + i, 80),
                    src=src.name, dst="h2", demand_bps=100e6,
                    duration_s=3.0, weight=weight,
                )
            )
        engine.submit_all(flows)
        sim.run(until=1.0)
        heavy = [f.rate_bps for f in flows[:30]]
        light = [f.rate_bps for f in flows[30:]]
        # The h2 access link is the shared bottleneck: 3x the share.
        assert sum(heavy) / sum(light) == pytest.approx(3.0, rel=0.01)

    def test_flow_weight_validated(self, line2):
        h1, h2 = line2.host("h1"), line2.host("h2")
        with pytest.raises(ValueError):
            Flow(
                headers=tcp_flow(h1.ip, h2.ip, 1, 2),
                src="h1", dst="h2", demand_bps=1e6, size_bytes=10,
                weight=0.0,
            )
