"""The stable ``repro.api`` facade and its golden-snapshot check.

``repro.api.__all__`` is the supported surface; the committed
``tools/api-surface.json`` snapshot pins each export's kind and
signature so CI catches accidental breaks.  These tests run the same
checker the lint target uses and exercise the facade end to end.
"""

import importlib
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOL = os.path.join(ROOT, "tools", "check_api_surface.py")
SNAPSHOT = os.path.join(ROOT, "tools", "api-surface.json")


def test_every_export_resolves():
    api = importlib.import_module("repro.api")
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing
    assert len(api.__all__) == len(set(api.__all__))


def test_surface_matches_committed_snapshot():
    sys.path.insert(0, os.path.dirname(TOOL))
    try:
        check = importlib.import_module("check_api_surface")
    finally:
        sys.path.pop(0)
    with open(SNAPSHOT) as handle:
        snapshot = json.load(handle)
    current = check.current_surface()
    problems = check._diff(snapshot, current)
    assert not problems, "\n".join(problems)


def test_checker_fails_on_drift(tmp_path):
    """A removed export must make the standalone tool exit non-zero."""
    with open(SNAPSHOT) as handle:
        snapshot = json.load(handle)
    snapshot["NoSuchExport"] = {"kind": "function", "signature": "()"}
    fake = tmp_path / "api-surface.json"
    fake.write_text(json.dumps(snapshot))
    source = open(TOOL).read().replace(
        'SNAPSHOT = os.path.join(ROOT, "tools", "api-surface.json")',
        f'SNAPSHOT = {str(fake)!r}',
    )
    patched = tmp_path / "check_patched.py"
    patched.write_text(source)
    proc = subprocess.run(
        [sys.executable, str(patched)],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    assert proc.returncode != 0
    assert "NoSuchExport" in proc.stderr


def test_facade_runs_a_scenario():
    from repro.api import Scenario

    result = Scenario(
        {
            "schema_version": 1,
            "engine": "flow",
            "until": 1.0,
            "topology": {"kind": "star", "hosts": 3},
            "policies": {
                "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
            },
            "traffic": {
                "kind": "matrix",
                "model": "uniform",
                "total": "10 Mbps",
                "horizon_s": 0.5,
            },
        }
    )
    _horse, run, count = result.run()
    assert count > 0
    assert run.sim_time_s == 1.0
