"""Unit tests for the checkpoint container and snapshot mechanics."""

import json
import os

import pytest

from repro import Horse, HorseConfig
from repro.errors import CheckpointError, ExperimentError
from repro.net.generators import single_switch
from repro.runtime import (
    CHECKPOINT_FORMAT_VERSION,
    SimulationSnapshot,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
)
from repro.runtime.checkpoint import MAGIC
from repro.traffic.matrix import TrafficMatrix


def small_horse(engine="flow", **config_kwargs):
    horse = Horse(
        single_switch(4),
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine=engine, seed=2, **config_kwargs),
    )
    matrix = TrafficMatrix.uniform(
        [h.name for h in horse.topology.hosts], total_bps=40e6
    )
    horse.submit_matrix(matrix, horizon_s=1.0)
    return horse


class TestContainer:
    def test_header_is_inspectable_without_unpickling(self, tmp_path):
        horse = small_horse()
        horse.run(until=0.5)
        path = str(tmp_path / "a.ckpt")
        written = save_checkpoint(horse, path)
        header = read_checkpoint_header(path)
        assert header == written
        assert header["format"] == CHECKPOINT_FORMAT_VERSION
        assert header["meta"]["engine"] == "flow"
        assert header["meta"]["sim_time_s"] == 0.5
        assert header["meta"]["seed"] == 2
        assert header["meta"]["flows"] > 0
        # The header line really is plain JSON on line two of the file.
        with open(path, "rb") as handle:
            assert handle.readline() == MAGIC
            json.loads(handle.readline())

    def test_not_a_checkpoint(self, tmp_path):
        path = str(tmp_path / "nope.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"something else entirely\n")
        with pytest.raises(CheckpointError, match="not a Horse checkpoint"):
            read_checkpoint_header(path)

    def test_corrupt_payload_detected(self, tmp_path):
        horse = small_horse()
        path = str(tmp_path / "a.ckpt")
        save_checkpoint(horse, path)
        with open(path, "rb") as handle:
            blob = handle.read()
        flipped = bytearray(blob)
        flipped[-10] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(flipped))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            load_checkpoint(path)

    def test_truncated_payload_detected(self, tmp_path):
        horse = small_horse()
        path = str(tmp_path / "a.ckpt")
        save_checkpoint(horse, path)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_newer_format_rejected(self, tmp_path):
        path = str(tmp_path / "future.ckpt")
        header = json.dumps({"format": CHECKPOINT_FORMAT_VERSION + 1}).encode()
        with open(path, "wb") as handle:
            handle.write(MAGIC + header + b"\n")
        with pytest.raises(CheckpointError, match="newer"):
            read_checkpoint_header(path)

    def test_newer_snapshot_version_rejected(self):
        snapshot = SimulationSnapshot.capture(small_horse())
        snapshot.version += 1
        with pytest.raises(CheckpointError, match="newer"):
            snapshot.resume()


class TestSnapshotSemantics:
    def test_new_flow_ids_do_not_collide_after_restore(self, tmp_path):
        from repro.flowsim.flow import Flow
        from repro.openflow.headers import tcp_flow

        horse = small_horse()
        path = str(tmp_path / "a.ckpt")
        horse.run(until=0.2)
        save_checkpoint(horse, path)
        restored = load_checkpoint(path)
        taken = set(restored.engine.flows)
        fresh = Flow(
            headers=tcp_flow("10.0.0.1", "10.0.0.2", 9999, 80),
            src="h0", dst="h1", demand_bps=1e6, size_bytes=1000,
            start_time=restored.sim.now,
        )
        assert fresh.flow_id not in taken
        assert fresh.flow_id > max(taken)

    def test_packet_engine_round_trip(self, tmp_path):
        horse = small_horse(engine="packet")
        horse.run(until=0.3)
        path = str(tmp_path / "p.ckpt")
        save_checkpoint(horse, path)
        restored = load_checkpoint(path)
        finished = restored.run(until=5.0)
        reference = small_horse(engine="packet")
        want = reference.run(until=5.0)
        assert finished.events == want.events
        assert finished.engine_summary == want.engine_summary

    def test_checkpoint_without_path_raises(self):
        with pytest.raises(ExperimentError, match="checkpoint path"):
            small_horse().checkpoint()

    def test_default_checkpoint_path_from_config(self, tmp_path):
        path = str(tmp_path / "default.ckpt")
        horse = small_horse(checkpoint_path=path)
        horse.checkpoint()
        assert os.path.exists(path)

    def test_interval_requires_path(self):
        with pytest.raises(ExperimentError, match="checkpoint.path"):
            HorseConfig(checkpoint_interval_s=1.0)

    def test_interval_must_be_positive(self):
        with pytest.raises(ExperimentError, match="> 0"):
            HorseConfig(checkpoint_path="x.ckpt", checkpoint_interval_s=0.0)
