"""Tests for the extension apps: firewall, mirror, path protection, VLANs."""

import pytest

from repro.control import ControlChannel, Controller
from repro.control.apps import (
    AclRule,
    FirewallApp,
    MirrorApp,
    MirrorRule,
    PathProtectionApp,
    ShortestPathApp,
    allow,
    deny,
)
from repro.errors import ControlPlaneError
from repro.flowsim import Flow, FlowLevelEngine, Terminal
from repro.net import IPv4Address
from repro.net.generators import full_mesh, single_switch, tree
from repro.openflow import (
    ApplyActions,
    HeaderFields,
    Match,
    Output,
    PopVlan,
    PushVlan,
    attach_pipeline,
)
from repro.openflow.headers import IpProto, tcp_flow, udp_flow
from repro.sim import Simulator


def wire(topo, *apps, num_tables=2):
    for switch in topo.switches:
        if switch.pipeline is None:
            attach_pipeline(switch, num_tables=num_tables)
    sim = Simulator()
    controller = Controller()
    for app in apps:
        controller.add_app(app)
    channel = ControlChannel(sim, topo, controller=controller)
    engine = FlowLevelEngine(sim, topo, control=channel)
    channel.connect_engine(engine)
    controller.start()
    return sim, controller, engine


def make_flow(topo, src, dst, dport=80, sport=1000, proto="tcp", **kw):
    s, d = topo.host(src), topo.host(dst)
    builder = tcp_flow if proto == "tcp" else udp_flow
    defaults = dict(demand_bps=1e6, size_bytes=100_000)
    defaults.update(kw)
    return Flow(
        headers=builder(s.ip, d.ip, sport, dport),
        src=src,
        dst=dst,
        elastic=(proto == "tcp"),
        **defaults,
    )


class TestVlanActions:
    def test_push_and_pop_rewrite_headers(self):
        topo = single_switch(3)
        pipeline = attach_pipeline(topo.switch("s1"))
        pipeline.install(
            Match(), (ApplyActions((PushVlan(100), Output(2))),), priority=10
        )
        result = pipeline.process(HeaderFields(), in_port=1)
        assert result.headers.vlan_vid == 100
        pipeline.install(
            Match(vlan_vid=100),
            (ApplyActions((PopVlan(), Output(3))),),
            priority=20,
        )
        tagged = HeaderFields(vlan_vid=100)
        result = pipeline.process(tagged, in_port=1)
        assert result.headers.vlan_vid is None
        assert result.out_ports == [3]

    def test_vlan_id_range_checked(self):
        with pytest.raises(ValueError):
            PushVlan(0)
        with pytest.raises(ValueError):
            PushVlan(4095)

    def test_vlan_match_isolation(self):
        """Rules matching different VLANs never cross-match."""
        topo = single_switch(3)
        pipeline = attach_pipeline(topo.switch("s1"))
        pipeline.install(
            Match(vlan_vid=10), (ApplyActions((Output(2),)),), priority=10
        )
        pipeline.install(
            Match(vlan_vid=20), (ApplyActions((Output(3),)),), priority=10
        )
        assert pipeline.process(
            HeaderFields(vlan_vid=10), in_port=1
        ).out_ports == [2]
        assert pipeline.process(
            HeaderFields(vlan_vid=20), in_port=1
        ).out_ports == [3]
        assert pipeline.process(HeaderFields(), in_port=1).miss


class TestFirewall:
    def _apps(self, rules, default_allow=True, scope="all"):
        firewall = FirewallApp(
            rules=rules, default_allow=default_allow, scope=scope
        )
        firewall.table_id = 0
        firewall.next_table = 1
        forwarding = ShortestPathApp(match_on="ip_dst")
        forwarding.table_id = 1
        return firewall, forwarding

    def test_deny_rule_drops_matching_traffic(self):
        topo = tree(2, 2)
        firewall, forwarding = self._apps(
            [deny(Match(ip_proto=IpProto.UDP))]
        )
        sim, controller, engine = wire(topo, firewall, forwarding)
        udp = make_flow(topo, "h1", "h4", proto="udp", duration_s=1.0,
                        size_bytes=None)
        tcp = make_flow(topo, "h1", "h4", sport=1001)
        engine.submit_all([udp, tcp])
        sim.run(until=30.0)
        assert udp.route.terminal is Terminal.BLACKHOLED
        assert tcp.delivered

    def test_first_match_wins(self):
        topo = tree(2, 2)
        victim_ip = topo.host("h4").ip
        # Allow h1's traffic to h4 explicitly, deny everything to h4.
        firewall, forwarding = self._apps(
            [
                allow(Match(ip_src=topo.host("h1").ip, ip_dst=victim_ip)),
                deny(Match(ip_dst=victim_ip)),
            ]
        )
        sim, controller, engine = wire(topo, firewall, forwarding)
        allowed = make_flow(topo, "h1", "h4")
        denied = make_flow(topo, "h2", "h4", sport=1001)
        engine.submit_all([allowed, denied])
        sim.run(until=30.0)
        assert allowed.delivered
        assert denied.route.terminal is Terminal.BLACKHOLED

    def test_default_deny(self):
        topo = tree(2, 2)
        firewall, forwarding = self._apps(
            [allow(Match(ip_proto=IpProto.TCP))], default_allow=False
        )
        sim, controller, engine = wire(topo, firewall, forwarding)
        tcp = make_flow(topo, "h1", "h4")
        udp = make_flow(topo, "h1", "h3", proto="udp", sport=1001,
                        duration_s=1.0, size_bytes=None)
        engine.submit_all([tcp, udp])
        sim.run(until=30.0)
        assert tcp.delivered
        assert not udp.delivered

    def test_append_rule_at_runtime(self):
        topo = tree(2, 2)
        firewall, forwarding = self._apps([])
        sim, controller, engine = wire(topo, firewall, forwarding)
        flow = make_flow(topo, "h1", "h4", duration_s=10.0, size_bytes=None)
        engine.submit(flow)
        sim.call_at(
            2.0,
            lambda s: firewall.append_rule(
                deny(Match(ip_dst=topo.host("h4").ip))
            ),
        )
        sim.run()
        engine.finish()
        assert flow.reroutes >= 1
        assert flow.route.terminal is Terminal.BLACKHOLED

    def test_single_table_pipeline_rejected(self):
        topo = tree(2, 2)
        for s in topo.switches:
            attach_pipeline(s, num_tables=1)
        firewall = FirewallApp(rules=[deny(Match())])
        sim = Simulator()
        controller = Controller()
        controller.add_app(firewall)
        ControlChannel(sim, topo, controller=controller)
        with pytest.raises(ControlPlaneError):
            controller.start()


class TestMirror:
    def test_mirrored_traffic_reaches_tap_and_destination(self):
        topo = single_switch(3, capacity_bps=100e6)
        mirror = MirrorApp(
            rules=[
                MirrorRule(
                    switch_name="s1",
                    match=Match(ip_dst=topo.host("h2").ip),
                    tap_host="h3",
                )
            ]
        )
        forwarding = ShortestPathApp(match_on="ip_dst")
        sim, controller, engine = wire(topo, mirror, forwarding)
        flow = make_flow(topo, "h1", "h2", demand_bps=10e6,
                         duration_s=2.0, size_bytes=None)
        engine.submit(flow)
        sim.run()
        engine.finish()
        assert flow.delivered
        expected = 10e6 * 2 / 8
        assert topo.host("h2").uplink_port.rx_bytes == pytest.approx(
            expected, rel=0.01
        )
        assert topo.host("h3").uplink_port.rx_bytes == pytest.approx(
            expected, rel=0.01
        )

    def test_tap_must_be_local(self):
        topo = tree(2, 2)
        mirror = MirrorApp(
            rules=[
                MirrorRule(
                    switch_name="s1",
                    match=Match(ip_dst=topo.host("h4").ip),
                    tap_host="h1",  # attached to a leaf, not s1
                )
            ]
        )
        for s in topo.switches:
            attach_pipeline(s)
        sim = Simulator()
        controller = Controller()
        controller.add_app(mirror)
        ControlChannel(sim, topo, controller=controller)
        with pytest.raises(ControlPlaneError):
            controller.start()

    def test_match_without_destination_rejected(self):
        topo = single_switch(3)
        mirror = MirrorApp(
            rules=[
                MirrorRule(
                    switch_name="s1", match=Match(tp_dst=80), tap_host="h3"
                )
            ]
        )
        for s in topo.switches:
            attach_pipeline(s)
        sim = Simulator()
        controller = Controller()
        controller.add_app(mirror)
        ControlChannel(sim, topo, controller=controller)
        with pytest.raises(ControlPlaneError):
            controller.start()


class TestPathProtection:
    def test_failover_without_controller_recompute(self):
        topo = full_mesh(3, hosts_per_switch=1)
        protection = PathProtectionApp(match_on="ip_dst")
        sim, controller, engine = wire(topo, protection)
        flow = make_flow(topo, "h1", "h2", duration_s=10.0, size_bytes=None)
        engine.submit(flow)
        flow_mods_before = None

        def check(s):
            nonlocal flow_mods_before
            flow_mods_before = engine.control.stats["flow_mods"]

        sim.call_at(1.9, check)
        engine.fail_link_at(2.0, "s1", "s2")
        sim.run(until=6.0)
        engine.finish()
        # Data-plane failover: the flow re-routed onto the backup...
        assert flow.delivered
        assert flow.reroutes >= 1
        assert len(flow.route.directions) == 4  # via s3
        # ...without the controller installing anything new on failure.
        assert engine.control.stats["flow_mods"] == flow_mods_before

    def test_backup_groups_installed(self):
        topo = full_mesh(3, hosts_per_switch=1)
        protection = PathProtectionApp(match_on="ip_dst")
        sim, controller, engine = wire(topo, protection)
        # s2 protecting h2's own attachment has no sideways alternative,
        # but s1 -> h2 has (via s3).
        s1 = topo.switch("s1")
        assert protection.protection[(s1.dpid, "h2")] >= 2

    def test_recovery_reinstalls_primaries(self):
        topo = full_mesh(3, hosts_per_switch=1)
        protection = PathProtectionApp(match_on="ip_dst")
        sim, controller, engine = wire(topo, protection)
        flow = make_flow(topo, "h1", "h2", duration_s=12.0, size_bytes=None)
        engine.submit(flow)
        engine.fail_link_at(2.0, "s1", "s2")
        engine.restore_link_at(6.0, "s1", "s2")
        sim.run(until=12.0)
        engine.finish()
        assert flow.delivered
        # Back on the direct path after recovery.
        assert len(flow.route.directions) == 3

    def test_invalid_match_on(self):
        with pytest.raises(ControlPlaneError):
            PathProtectionApp(match_on="nope")
