"""Property and adversarial tests for the OpenFlow wire codec.

The codec promises ``decode(encode(m)) == m`` for every control message
the simulator can emit, and a :class:`~repro.errors.WireError` (never a
crash, never a silent wrong answer) for every malformed frame.  The
round-trip half is checked with hypothesis over the full message
algebra — all encoder-table classes, wildcard matches, IPv4 prefixes,
the tagged value codec, nested actions/instructions/buckets/bands — and
the rejection half with deterministic corrupted frames: truncation at
every byte, trailing garbage, bad version, unknown type/subtype/tag
codes, out-of-range fields, and oversized frames.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireError
from repro.net.address import IPv4Address, IPv4Network, MacAddress
from repro.openflow.action import (
    ApplyActions,
    Drop,
    Flood,
    GotoTable,
    GroupAction,
    MeterInstruction,
    Output,
    PopVlan,
    PushVlan,
    SetField,
    ToController,
)
from repro.openflow.group import Bucket, GroupType
from repro.openflow.headers import HeaderFields
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    FlowRemovedReason,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    GroupModCommand,
    Hello,
    MeterMod,
    MeterModCommand,
    PacketIn,
    PacketInReason,
    PacketOut,
    PortStatsReply,
    PortStatsRequest,
    PortStatus,
    PortStatusReason,
    TableStatsReply,
    TableStatsRequest,
)
from repro.openflow.meter import DropBand
from repro.wire import codec
from repro.wire.codec import (
    HEADER_SIZE,
    MAX_FRAME_SIZE,
    WIRE_VERSION,
    FrameReader,
    decode,
    encode,
)

# ----------------------------------------------------------------------
# Strategies: exact wire-field domains
# ----------------------------------------------------------------------

u8 = st.integers(0, 0xFF)
u16 = st.integers(0, 0xFFFF)
u32 = st.integers(0, 0xFFFFFFFF)
u64 = st.integers(0, 2**64 - 1)
i32 = st.integers(-(2**31), 2**31 - 1)
i64 = st.integers(-(2**63), 2**63 - 1)
# IEEE doubles survive `!d` exactly; NaN would break == round-trips.
f64 = st.floats(allow_nan=False, allow_infinity=False)

dpids = u64
xids = u32
macs = st.builds(MacAddress, st.integers(0, 2**48 - 1))
ips = st.builds(IPv4Address, u32)
networks = st.builds(
    lambda address, prefix: IPv4Network((address, prefix)),
    u32,
    st.integers(0, 32),
)
ip_matches = ips | networks
short_text = st.text(max_size=20)


def opt(strategy):
    return st.none() | strategy


matches = st.builds(
    Match,
    in_port=opt(i32),
    eth_src=opt(macs),
    eth_dst=opt(macs),
    eth_type=opt(u16),
    vlan_vid=opt(u16),
    ip_src=opt(ip_matches),
    ip_dst=opt(ip_matches),
    ip_proto=opt(u8),
    tp_src=opt(u16),
    tp_dst=opt(u16),
)

header_fields = st.builds(
    HeaderFields,
    eth_src=opt(macs),
    eth_dst=opt(macs),
    eth_type=opt(u16),
    vlan_vid=opt(u16),
    ip_src=opt(ips),
    ip_dst=opt(ips),
    ip_proto=opt(u8),
    tp_src=opt(u16),
    tp_dst=opt(u16),
)

# The tagged value codec: every scalar tag, then containers one level
# at a time (kept shallow so frames stay far below the 64 KiB ceiling).
_scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    i64,
    f64,
    short_text,
    st.binary(max_size=16),
    macs,
    ips,
    networks,
    matches,
    header_fields,
)
values = st.recursive(
    _scalar_values,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(short_text, children, max_size=3),
    ),
    max_leaves=8,
)

_SET_FIELD_VALUES = {
    "eth_src": macs,
    "eth_dst": macs,
    "eth_type": u16,
    "vlan_vid": u16,
    "ip_src": ips,
    "ip_dst": ips,
    "ip_proto": u8,
    "tp_src": u16,
    "tp_dst": u16,
}


@st.composite
def set_fields(draw):
    name = draw(st.sampled_from(SetField.ALLOWED_FIELDS))
    return SetField(name, draw(_SET_FIELD_VALUES[name]))


actions = st.one_of(
    st.builds(Output, i32),
    st.just(Flood()),
    st.just(Drop()),
    st.just(ToController()),
    set_fields(),
    st.builds(GroupAction, u32),
    st.builds(PushVlan, st.integers(1, 4094)),
    st.just(PopVlan()),
)
action_lists = st.lists(actions, max_size=3).map(tuple)

instructions = st.one_of(
    st.builds(ApplyActions, action_lists),
    st.builds(GotoTable, u8),
    st.builds(MeterInstruction, u32),
)

buckets = st.builds(
    Bucket,
    actions=action_lists,
    weight=u32,
    watch_port=opt(i32),
)

bands = st.builds(
    DropBand,
    rate_bps=st.floats(min_value=1e-3, max_value=1e15),
    burst_bits=st.floats(min_value=0.0, max_value=1e15),
)

stats_lists = st.lists(
    st.dictionaries(
        short_text,
        st.one_of(i64, f64, short_text, st.booleans()),
        max_size=4,
    ),
    max_size=3,
)


def _msg(cls, **fields):
    return st.builds(cls, dpid=dpids, xid=xids, **fields)


MESSAGE_STRATEGIES = {
    Hello: _msg(Hello, version=u8),
    ErrorMsg: _msg(
        ErrorMsg, error_type=short_text, detail=short_text, failed_xid=u32
    ),
    EchoRequest: _msg(EchoRequest, payload=st.binary(max_size=64)),
    EchoReply: _msg(EchoReply, payload=st.binary(max_size=64)),
    FeaturesRequest: _msg(FeaturesRequest),
    FeaturesReply: _msg(
        FeaturesReply,
        n_buffers=u32,
        n_tables=u8,
        auxiliary_id=u8,
        capabilities=u32,
        reserved=u32,
    ),
    PacketIn: _msg(
        PacketIn,
        in_port=i32,
        reason=st.sampled_from(PacketInReason),
        headers=opt(header_fields),
        rate_bps=f64,
        size_bytes=i64,
        flow_id=opt(i64),
    ),
    FlowRemoved: _msg(
        FlowRemoved,
        table_id=u8,
        match=matches,
        priority=u32,
        reason=st.sampled_from(FlowRemovedReason),
        cookie=u64,
        duration_s=f64,
        packet_count=i64,
        byte_count=i64,
    ),
    PortStatus: _msg(
        PortStatus,
        port_no=i32,
        reason=st.sampled_from(PortStatusReason),
        link_up=st.booleans(),
    ),
    PacketOut: _msg(
        PacketOut,
        in_port=i32,
        headers=opt(header_fields),
        out_ports=st.lists(i32, max_size=4).map(tuple),
        buffer_id=opt(u32),
    ),
    FlowMod: _msg(
        FlowMod,
        command=st.sampled_from(FlowModCommand),
        table_id=u8,
        match=matches,
        priority=u32,
        instructions=st.lists(instructions, max_size=3).map(tuple),
        idle_timeout=f64,
        hard_timeout=f64,
        cookie=u64,
        check_overlap=st.booleans(),
    ),
    GroupMod: _msg(
        GroupMod,
        command=st.sampled_from(GroupModCommand),
        group_id=u32,
        group_type=st.sampled_from(GroupType),
        buckets=st.lists(buckets, max_size=3).map(tuple),
    ),
    MeterMod: _msg(
        MeterMod,
        command=st.sampled_from(MeterModCommand),
        meter_id=u32,
        bands=st.lists(bands, max_size=3).map(tuple),
    ),
    BarrierRequest: _msg(BarrierRequest),
    BarrierReply: _msg(BarrierReply),
    FlowStatsRequest: _msg(
        FlowStatsRequest, table_id=opt(u8), match=opt(matches), cookie=opt(u64)
    ),
    TableStatsRequest: _msg(TableStatsRequest),
    PortStatsRequest: _msg(PortStatsRequest, port_no=opt(i32)),
    FlowStatsReply: _msg(FlowStatsReply, stats=stats_lists),
    TableStatsReply: _msg(TableStatsReply, stats=stats_lists),
    PortStatsReply: _msg(PortStatsReply, stats=stats_lists),
}

any_message = st.one_of(tuple(MESSAGE_STRATEGIES.values()))

_CLASSES = sorted(MESSAGE_STRATEGIES, key=lambda cls: cls.__name__)


def _assert_roundtrip(message):
    frame = encode(message)
    assert frame[0] == WIRE_VERSION
    assert len(frame) <= MAX_FRAME_SIZE
    assert struct.unpack_from("!H", frame, 2)[0] == len(frame)
    decoded = decode(frame)
    assert type(decoded) is type(message)
    assert decoded == message


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


def test_every_encoder_class_has_a_strategy():
    # The strategy table above must track the codec's encoder table so
    # a message class added to the wire protocol without a round-trip
    # property fails here, not in production.
    assert set(MESSAGE_STRATEGIES) == set(codec._ENCODERS)


@given(any_message)
@settings(max_examples=300, deadline=None)
def test_roundtrip_any_message(message):
    _assert_roundtrip(message)


@pytest.mark.parametrize("cls", _CLASSES, ids=lambda cls: cls.__name__)
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_roundtrip_per_class(cls, data):
    _assert_roundtrip(data.draw(MESSAGE_STRATEGIES[cls]))


@given(_msg(FlowMod, match=matches, instructions=st.lists(
    instructions, max_size=3).map(tuple)))
@settings(max_examples=60, deadline=None)
def test_flow_mod_frames_are_deterministic(message):
    assert encode(message) == encode(message)


@given(st.lists(any_message, min_size=1, max_size=4), st.integers(1, 9))
@settings(max_examples=60, deadline=None)
def test_frame_reader_reassembles_any_chunking(messages, chunk_size):
    stream = b"".join(encode(m) for m in messages)
    reader = FrameReader()
    frames = []
    for i in range(0, len(stream), chunk_size):
        reader.feed(stream[i : i + chunk_size])
        frames.extend(reader.frames())
    assert [decode(frame) for frame in frames] == messages
    assert reader.pending_bytes == 0


# ----------------------------------------------------------------------
# Malformed frames are rejected, never mis-decoded
# ----------------------------------------------------------------------

# A frame exercising the deepest body structure: wildcards, prefixes,
# nested instructions/actions, floats, and the optional-field flags.
_RICH_MESSAGE = FlowMod(
    dpid=7,
    xid=99,
    command=FlowModCommand.ADD,
    table_id=2,
    match=Match(
        in_port=3,
        eth_src=MacAddress("00:11:22:33:44:55"),
        eth_dst=MacAddress("ff:ff:ff:ff:ff:ff"),
        eth_type=0x0800,
        ip_src=IPv4Network("10.0.0.0/8"),
        ip_dst=IPv4Address("10.1.2.3"),
        tp_dst=80,
    ),
    priority=100,
    instructions=(
        ApplyActions(
            (
                Output(4),
                SetField("vlan_vid", 7),
                PushVlan(9),
                PopVlan(),
            )
        ),
        GotoTable(3),
        MeterInstruction(12),
    ),
    idle_timeout=1.5,
    hard_timeout=30.0,
    cookie=0xDEADBEEF,
)


def test_truncation_at_every_byte_raises():
    frame = encode(_RICH_MESSAGE)
    for cut in range(len(frame)):
        with pytest.raises(WireError):
            decode(frame[:cut])


def test_trailing_bytes_raise():
    frame = encode(_RICH_MESSAGE)
    with pytest.raises(WireError):
        decode(frame + b"\x00")


def test_bad_version_raises():
    frame = bytearray(encode(Hello(dpid=1, xid=1)))
    frame[0] = 0x05
    with pytest.raises(WireError, match="version"):
        decode(bytes(frame))


def test_unknown_type_code_raises():
    frame = struct.pack("!BBHI", WIRE_VERSION, 99, HEADER_SIZE + 8, 0)
    frame += struct.pack("!Q", 1)
    with pytest.raises(WireError, match="unknown message type"):
        decode(frame)


def test_unknown_multipart_subtype_raises():
    # Type 18 is a multipart request; subtype 99 has no decoder.
    frame = struct.pack("!BBHI", WIRE_VERSION, 18, HEADER_SIZE + 10, 0)
    frame += struct.pack("!QH", 1, 99)
    with pytest.raises(WireError, match="subtype 99"):
        decode(frame)


def test_length_field_mismatch_raises():
    frame = bytearray(encode(Hello(dpid=1, xid=1)))
    struct.pack_into("!H", frame, 2, len(frame) + 4)
    with pytest.raises(WireError, match="length"):
        decode(bytes(frame))


def test_encode_rejects_out_of_range_xid():
    for xid in (-1, 1 << 32):
        with pytest.raises(WireError, match="xid"):
            encode(Hello(dpid=1, xid=xid))


def test_encode_rejects_oversized_frame():
    big = EchoRequest(dpid=1, xid=1, payload=b"x" * (MAX_FRAME_SIZE + 1))
    with pytest.raises(WireError, match="maximum"):
        encode(big)


def test_encode_rejects_out_of_range_field():
    with pytest.raises(WireError):
        encode(FeaturesReply(dpid=1, xid=1, n_tables=300))  # u8 field
    with pytest.raises(WireError):
        encode(Hello(dpid=-1, xid=1))  # u64 dpid


def test_encode_rejects_unregistered_message_class():
    class Unregistered(Hello):
        pass

    with pytest.raises(WireError, match="no wire encoding"):
        encode(Unregistered(dpid=1, xid=1))


def _offset_of(frame: bytes, expected: int, offset: int) -> bytearray:
    """Sanity-check a hand-computed body offset, then return a copy."""
    assert frame[offset] == expected, (
        f"frame layout changed: byte {offset} is {frame[offset]}, "
        f"expected {expected}"
    )
    return bytearray(frame)


def test_unknown_match_bitmap_bits_raise():
    # FlowMod body: dpid(8) + command(1) + table_id(1), then the match
    # bitmap u16.  Only 10 field bits are defined; set bit 15.
    frame = encode(FlowMod(dpid=1, xid=1))
    tampered = bytearray(frame)
    tampered[HEADER_SIZE + 10] |= 0x80
    with pytest.raises(WireError):
        decode(bytes(tampered))


def test_bad_optional_flag_raises():
    # PortStatsRequest body: dpid(8) + subtype(2) + optional flag.
    frame = encode(PortStatsRequest(dpid=1, xid=1, port_no=None))
    tampered = _offset_of(frame, 0, HEADER_SIZE + 10)
    tampered[HEADER_SIZE + 10] = 2
    with pytest.raises(WireError):
        decode(bytes(tampered))


def test_unknown_value_tag_raises():
    # PortStatsReply body: dpid(8) + subtype(2) + count u32, then the
    # first stat dict's value tag (dict = 14).
    frame = encode(PortStatsReply(dpid=1, xid=1, stats=[{"rx": 1}]))
    tampered = _offset_of(frame, 14, HEADER_SIZE + 14)
    tampered[HEADER_SIZE + 14] = 200
    with pytest.raises(WireError):
        decode(bytes(tampered))


def _single_action_frame(action) -> bytes:
    return encode(
        FlowMod(dpid=1, xid=1, instructions=(ApplyActions((action,)),))
    )


# FlowMod body offsets up to the first action's tag byte: dpid(8) +
# command(1) + table_id(1) + empty match bitmap(2) + priority(4) +
# instruction count(2) + apply-actions tag(1) + action count(2).
_ACTION_TAG_OFFSET = HEADER_SIZE + 21


def test_unknown_action_tag_raises():
    frame = _single_action_frame(Drop())  # Drop's wire tag is 2
    tampered = _offset_of(frame, 2, _ACTION_TAG_OFFSET)
    tampered[_ACTION_TAG_OFFSET] = 200
    with pytest.raises(WireError):
        decode(bytes(tampered))


def test_out_of_range_vlan_id_on_the_wire_raises():
    # PushVlan's wire tag is 6; its vid u16 follows the tag.  VLAN 0 is
    # constructible on the wire but not in the dataclass — the decoder
    # must reject it.
    frame = _single_action_frame(PushVlan(5))
    tampered = _offset_of(frame, 6, _ACTION_TAG_OFFSET)
    tampered[_ACTION_TAG_OFFSET + 1] = 0
    tampered[_ACTION_TAG_OFFSET + 2] = 0
    with pytest.raises(WireError):
        decode(bytes(tampered))


def test_unknown_instruction_tag_raises():
    # The instruction tag directly precedes the action count.
    frame = _single_action_frame(Drop())
    tampered = _offset_of(frame, 0, _ACTION_TAG_OFFSET - 3)
    tampered[_ACTION_TAG_OFFSET - 3] = 200
    with pytest.raises(WireError):
        decode(bytes(tampered))


def test_ip_prefix_longer_than_32_raises():
    # Match with only ip_src set to a /8: dpid(8) + command(1) +
    # table_id(1) + bitmap(2) + network tag(1) + address(4), then the
    # prefix-length u8.
    frame = encode(
        FlowMod(dpid=1, xid=1, match=Match(ip_src=IPv4Network("10.0.0.0/8")))
    )
    prefix_offset = HEADER_SIZE + 17
    tampered = _offset_of(frame, 8, prefix_offset)
    tampered[prefix_offset] = 33
    with pytest.raises(WireError):
        decode(bytes(tampered))


# ----------------------------------------------------------------------
# FrameReader stream handling
# ----------------------------------------------------------------------


def test_frame_reader_waits_on_partial_header():
    reader = FrameReader()
    reader.feed(b"\x04\x00")
    assert list(reader.frames()) == []
    assert reader.pending_bytes == 2


def test_frame_reader_waits_on_partial_body():
    frame = encode(_RICH_MESSAGE)
    reader = FrameReader()
    reader.feed(frame[: len(frame) // 2])
    assert list(reader.frames()) == []
    reader.feed(frame[len(frame) // 2 :])
    assert [decode(f) for f in reader.frames()] == [_RICH_MESSAGE]


def test_frame_reader_splits_coalesced_frames():
    hello = Hello(dpid=1, xid=1)
    barrier = BarrierRequest(dpid=1, xid=2)
    reader = FrameReader()
    reader.feed(encode(hello) + encode(barrier))
    assert [decode(f) for f in reader.frames()] == [hello, barrier]


def test_frame_reader_rejects_bad_stream_version():
    reader = FrameReader()
    reader.feed(b"\x7f" + b"\x00" * 7)
    with pytest.raises(WireError, match="version"):
        list(reader.frames())


def test_frame_reader_rejects_impossible_length():
    reader = FrameReader()
    reader.feed(struct.pack("!BBHI", WIRE_VERSION, 0, HEADER_SIZE - 1, 0))
    with pytest.raises(WireError, match="length"):
        list(reader.frames())
