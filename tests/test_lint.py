"""Simulation-correctness lint framework (repro.lint).

Fixture-driven rule tests (one positive + one negative module per rule
family under ``tests/lint_fixtures/``), suppression and baseline
semantics, reporter output (JSON/SARIF golden shape), CLI gate
semantics, and the self-check that the shipped source lints clean
against the shipped (empty) baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.findings import fingerprint_of
from repro.lint import (
    LintConfigError,
    LintReport,
    all_rules,
    lint_source,
    load_baseline,
    run_lint,
    select_rules,
    write_baseline,
)
from repro.lint.engine import BARE_NOQA_RULE, SYNTAX_RULE

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_fixture(relpath: str) -> LintReport:
    return run_lint([str(FIXTURES / relpath)])


def rules_found(report: LintReport) -> set:
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# Rule families: each bad fixture trips its family, each ok stays clean
# ----------------------------------------------------------------------


class TestRuleFamilies:
    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("determinism/sim/bad_wall_clock.py", "DET001"),
            ("determinism/bad_global_rng.py", "DET002"),
            ("determinism/sim/bad_set_iteration.py", "DET003"),
            ("snapshot/flowsim/bad_unpicklable.py", "SNAP001"),
            ("snapshot/bad_counter.py", "SNAP002"),
            ("telemetry/bad_unguarded.py", "TEL001"),
            ("private/bad_private.py", "PRIV001"),
            ("private/bad_private.py", "PRIV002"),
            ("handlers/sim/bad_mutation.py", "EVT001"),
        ],
    )
    def test_bad_fixture_detected(self, fixture, rule):
        report = lint_fixture(fixture)
        assert rule in rules_found(report), report.summary_text()

    @pytest.mark.parametrize(
        "fixture",
        [
            "determinism/sim/ok_kernel_clock.py",
            "determinism/ok_seeded_rng.py",
            "determinism/sim/ok_sorted_iteration.py",
            "snapshot/flowsim/ok_getstate.py",
            "snapshot/ok_counter.py",
            "telemetry/ok_guarded.py",
            "private/ok_public.py",
            "handlers/sim/ok_input_event.py",
        ],
    )
    def test_ok_fixture_clean(self, fixture):
        report = lint_fixture(fixture)
        assert report.ok, report.summary_text()

    def test_bad_wall_clock_counts(self):
        # Both the time.time() and datetime.now() reads are located.
        report = lint_fixture("determinism/sim/bad_wall_clock.py")
        assert len(report.by_rule("DET001")) == 2

    def test_bad_set_iteration_flags_all_three_shapes(self):
        # Annotated parameter, self attribute, and set literal.
        report = lint_fixture("determinism/sim/bad_set_iteration.py")
        assert len(report.by_rule("DET003")) == 3

    def test_scoped_rule_ignores_out_of_scope_module(self):
        # The same wall-clock source outside a sim scope is not DET001's
        # business (host-side tooling may read the clock).
        source = (FIXTURES / "determinism/sim/bad_wall_clock.py").read_text()
        report = LintReport(rules_run=1)
        lint_source("tools/whatever.py", source, select_rules(["DET001"]), report)
        assert report.ok


# ----------------------------------------------------------------------
# Registry / selection
# ----------------------------------------------------------------------


class TestRegistry:
    def test_all_five_families_registered(self):
        families = {rule.id.rstrip("0123456789") for rule in all_rules()}
        assert {"DET", "SNAP", "TEL", "PRIV", "EVT"} <= families

    def test_rule_ids_are_stable_format(self):
        for rule in all_rules():
            assert rule.id[-3:].isdigit()
            assert rule.description

    def test_select_family_prefix(self):
        rules = select_rules(select=["DET"])
        assert {rule.id for rule in rules} == {"DET001", "DET002", "DET003"}

    def test_ignore_single_rule(self):
        rules = select_rules(ignore=["DET003"])
        ids = {rule.id for rule in rules}
        assert "DET003" not in ids and "DET001" in ids

    def test_unknown_selector_raises(self):
        with pytest.raises(LintConfigError):
            select_rules(select=["NOPE"])


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

SUPPRESSED_SRC = """\
import time

def stamp(event):
    event.time = time.time()  # repro: noqa[DET001] - test fixture
"""

BARE_SUPPRESSION_SRC = """\
import time

def stamp(event):
    event.time = time.time()  # repro: noqa[DET001]
"""

WILDCARD_SRC = """\
import time

def stamp(event):
    event.time = time.time()  # repro: noqa[*] - fixture silences all
"""

WRONG_RULE_SRC = """\
import time

def stamp(event):
    event.time = time.time()  # repro: noqa[TEL001] - wrong rule id
"""


class TestSuppressions:
    def run(self, source: str) -> LintReport:
        report = LintReport()
        lint_source("pkg/sim/mod.py", source, all_rules(), report)
        return report

    def test_noqa_with_reason_suppresses(self):
        report = self.run(SUPPRESSED_SRC)
        assert report.ok
        assert report.suppressed == 1

    def test_reasonless_noqa_suppresses_but_reports_lint002(self):
        report = self.run(BARE_SUPPRESSION_SRC)
        assert rules_found(report) == {BARE_NOQA_RULE}
        assert report.suppressed == 1

    def test_wildcard_covers_any_rule(self):
        report = self.run(WILDCARD_SRC)
        assert report.ok

    def test_wrong_rule_id_does_not_suppress(self):
        report = self.run(WRONG_RULE_SRC)
        assert "DET001" in rules_found(report)

    def test_legacy_private_ok_still_honored(self):
        source = "def f(other):\n    return other._seq  # private-ok\n"
        report = LintReport()
        lint_source("pkg/mod.py", source, all_rules(), report)
        assert report.ok

    def test_syntax_error_is_lint001(self):
        report = LintReport()
        lint_source("pkg/mod.py", "def broken(:\n", all_rules(), report)
        assert rules_found(report) == {SYNTAX_RULE}


# ----------------------------------------------------------------------
# Baseline semantics
# ----------------------------------------------------------------------


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        target = FIXTURES / "determinism" / "sim" / "bad_wall_clock.py"
        before = run_lint([str(target)])
        assert not before.ok
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), before)
        after = run_lint([str(target)], baseline=str(baseline))
        assert after.ok
        assert after.baselined == len(before.findings)

    def test_empty_baseline_filters_nothing(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 1, "fingerprints": []}\n')
        target = FIXTURES / "determinism" / "sim" / "bad_wall_clock.py"
        report = run_lint([str(target)], baseline=str(baseline))
        assert not report.ok
        assert report.baselined == 0

    def test_malformed_baseline_raises(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[1, 2, 3]\n")
        with pytest.raises(LintConfigError):
            run_lint(["src/repro/lint"], baseline=str(baseline))

    def test_shipped_baseline_is_empty(self):
        shipped = json.loads((REPO / "tools" / "lint-baseline.json").read_text())
        assert shipped["fingerprints"] == []


# ----------------------------------------------------------------------
# Reporters: shared envelope, JSON, SARIF golden shape
# ----------------------------------------------------------------------


class TestReporters:
    def report(self) -> LintReport:
        return lint_fixture("determinism/sim/bad_wall_clock.py")

    def test_envelope_matches_analysis_schema(self):
        finding = self.report().sorted_findings()[0]
        env = finding.to_envelope()
        assert set(env) == {
            "rule", "severity", "message", "location", "fingerprint"
        }
        assert env["fingerprint"] == fingerprint_of(
            env["rule"], env["location"], env["message"]
        )

    def test_json_document_shape(self):
        document = self.report().to_dict()
        assert document["errors"] == 2
        assert all(
            set(f) == {"rule", "severity", "message", "location", "fingerprint"}
            for f in document["findings"]
        )

    def test_sarif_golden_shape(self):
        sarif = self.report().to_sarif()
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {rule["id"] for rule in driver["rules"]} == {"DET001"}
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "bad_wall_clock.py"
        )
        assert location["region"]["startLine"] > 0
        assert result["partialFingerprints"]["reproFingerprint/v1"]

    def test_sarif_tool_name_differs_from_analyzer(self):
        from repro.analysis.findings import AnalysisReport

        doc = AnalysisReport().to_sarif()
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-analyze"


# ----------------------------------------------------------------------
# CLI: gate semantics shared with `repro analyze`
# ----------------------------------------------------------------------


def run_cli(*argv: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        cwd=str(REPO),
        env=env,
    )


class TestCli:
    def test_findings_exit_zero_without_strict(self):
        proc = run_cli(
            "lint", str(FIXTURES / "determinism" / "sim" / "bad_wall_clock.py")
        )
        assert proc.returncode == 0
        assert "DET001" in proc.stdout

    def test_findings_exit_nonzero_with_strict(self):
        proc = run_cli(
            "lint",
            str(FIXTURES / "determinism" / "sim" / "bad_wall_clock.py"),
            "--strict",
        )
        assert proc.returncode == 1

    def test_sarif_format(self):
        proc = run_cli(
            "lint",
            str(FIXTURES / "determinism" / "sim" / "bad_wall_clock.py"),
            "--format",
            "sarif",
        )
        document = json.loads(proc.stdout)
        assert document["version"] == "2.1.0"

    def test_list_rules(self):
        proc = run_cli("lint", "--list-rules")
        assert proc.returncode == 0
        for rule_id in ("DET001", "SNAP001", "TEL001", "PRIV001", "EVT001"):
            assert rule_id in proc.stdout

    def test_unknown_rule_fails_loudly(self):
        proc = run_cli("lint", "src/repro/lint", "--select", "NOPE")
        assert proc.returncode == 1
        assert "unknown rule" in proc.stderr

    def test_private_access_shim_delegates(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_private_access.py")],
            capture_output=True,
            text=True,
            cwd=str(REPO),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# Self-check: the shipped source lints clean with the shipped baseline
# ----------------------------------------------------------------------


class TestSelfCheck:
    def test_src_is_clean(self):
        report = run_lint(
            [str(REPO / "src" / "repro")],
            baseline=str(REPO / "tools" / "lint-baseline.json"),
        )
        assert report.ok, report.summary_text()
        assert report.baselined == 0
        assert report.files_checked > 100

    def test_every_suppression_in_src_carries_a_reason(self):
        # LINT002 would fire otherwise, but assert directly for clarity.
        report = run_lint([str(REPO / "src" / "repro")])
        assert not report.by_rule(BARE_NOQA_RULE)
