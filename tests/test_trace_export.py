"""Trace persistence and result export tests."""

import csv
import io
import json
import random

import pytest

from repro import Flow, Horse
from repro.errors import TrafficError
from repro.net.generators import single_switch, tree
from repro.openflow.headers import tcp_flow, udp_flow
from repro.stats import flows_to_csv, result_to_dict, result_to_json, summary_text
from repro.traffic import (
    FlowGenerator,
    TrafficMatrix,
    flow_from_record,
    flow_to_record,
    load_trace,
    save_trace,
)


def sample_flows(topo, rng):
    tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 20e6)
    return FlowGenerator(topo, rng).from_matrix(tm, horizon_s=2.0)


class TestTraceIO:
    def test_record_round_trip_preserves_workload_fields(self):
        topo = single_switch(2)
        h1, h2 = topo.hosts
        original = Flow(
            headers=udp_flow(h1.ip, h2.ip, 5555, 53,
                             eth_src=h1.mac, eth_dst=h2.mac),
            src="h1",
            dst="h2",
            demand_bps=3e6,
            duration_s=4.5,
            start_time=1.25,
            elastic=False,
        )
        rebuilt = flow_from_record(flow_to_record(original))
        assert rebuilt.headers == original.headers
        assert rebuilt.src == original.src
        assert rebuilt.demand_bps == original.demand_bps
        assert rebuilt.duration_s == original.duration_s
        assert rebuilt.start_time == original.start_time
        assert rebuilt.elastic is False

    def test_file_round_trip(self, tmp_path):
        topo = single_switch(4)
        flows = sample_flows(topo, random.Random(8))
        path = str(tmp_path / "trace.jsonl")
        count = save_trace(flows, path)
        assert count == len(flows)
        rebuilt = load_trace(path)
        assert len(rebuilt) == len(flows)
        for a, b in zip(flows, rebuilt):
            assert a.headers == b.headers
            assert a.start_time == b.start_time
            assert a.size_bytes == b.size_bytes

    def test_stream_round_trip(self):
        topo = single_switch(3)
        flows = sample_flows(topo, random.Random(9))
        buffer = io.StringIO()
        save_trace(flows, buffer)
        buffer.seek(0)
        rebuilt = load_trace(buffer)
        assert len(rebuilt) == len(flows)

    def test_replaying_a_trace_reproduces_the_run(self, tmp_path):
        """Save, reload, re-run: flow outcomes are identical."""
        topo_a = tree(2, 2)
        flows_a = sample_flows(topo_a, random.Random(10))
        path = str(tmp_path / "trace.jsonl")
        save_trace(flows_a, path)

        def run(topo, flows):
            horse = Horse(
                topo,
                policies={
                    "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
                },
            )
            horse.submit_flows(flows)
            return horse.run(until=60.0)

        result_a = run(topo_a, flows_a)
        topo_b = tree(2, 2)
        result_b = run(topo_b, load_trace(path))
        fct_a = sorted(round(f, 6) for f in (
            fl.flow_completion_time for fl in result_a.completed_flows
        ))
        fct_b = sorted(round(f, 6) for f in (
            fl.flow_completion_time for fl in result_b.completed_flows
        ))
        assert fct_a == fct_b

    def test_header_and_version_checked(self):
        with pytest.raises(TrafficError):
            load_trace(io.StringIO(""))
        with pytest.raises(TrafficError):
            load_trace(io.StringIO('{"format": "something-else"}\n'))
        with pytest.raises(TrafficError):
            load_trace(
                io.StringIO('{"format": "horse-trace", "version": 9}\n')
            )


class TestResultExport:
    @pytest.fixture
    def run_result(self):
        topo = tree(2, 2)
        horse = Horse(
            topo,
            policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
            )
        h1, h4 = topo.host("h1"), topo.host("h4")
        horse.submit_flows(
            [
                Flow(
                    headers=tcp_flow(h1.ip, h4.ip, 1000, 80),
                    src="h1",
                    dst="h4",
                    demand_bps=2e6,
                    size_bytes=250_000,
                )
            ]
        )
        return horse.run()

    def test_csv_export(self, run_result, tmp_path):
        path = str(tmp_path / "flows.csv")
        rows = flows_to_csv(run_result, path)
        assert rows == 1
        with open(path) as handle:
            records = list(csv.DictReader(handle))
        assert records[0]["src"] == "h1"
        assert records[0]["state"] == "completed"
        assert float(records[0]["goodput_bps"]) == pytest.approx(2e6, rel=0.01)

    def test_json_document(self, run_result):
        doc = result_to_dict(run_result)
        assert doc["delivered_fraction"] == 1.0
        assert doc["flows"][0]["terminal"] == "delivered"
        # Must actually be JSON-serializable.
        json.dumps(doc)

    def test_json_file(self, run_result, tmp_path):
        path = str(tmp_path / "run.json")
        result_to_json(run_result, path)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["events"] == run_result.events

    def test_summary_text(self, run_result):
        text = summary_text(run_result)
        assert "run summary" in text
        assert "flows" in text
        assert "goodput" in text
