"""Group table and meter tests."""

import pytest

from repro.errors import GroupError, MeterError
from repro.net import IPv4Address
from repro.openflow import (
    Bucket,
    DropBand,
    Group,
    GroupTable,
    GroupType,
    HeaderFields,
    Meter,
    MeterTable,
    Output,
    flow_hash,
)
from repro.openflow.headers import tcp_flow


def headers(tp_src=1000):
    return tcp_flow(IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"), tp_src, 80)


class TestGroupSelection:
    def test_all_group_replicates(self):
        group = Group(1, GroupType.ALL, [Bucket((Output(1),)), Bucket((Output(2),))])
        chosen = group.select_buckets(headers())
        assert [i for i, _ in chosen] == [0, 1]

    def test_indirect_group_single_bucket(self):
        group = Group(1, GroupType.INDIRECT, [Bucket((Output(3),))])
        assert len(group.select_buckets(headers())) == 1
        with pytest.raises(GroupError):
            Group(2, GroupType.INDIRECT, [Bucket((Output(1),)), Bucket((Output(2),))])

    def test_select_group_is_deterministic_per_flow(self):
        group = Group(
            1, GroupType.SELECT, [Bucket((Output(i),)) for i in range(1, 5)]
        )
        first = group.select_buckets(headers(tp_src=1234))
        for _ in range(5):
            assert group.select_buckets(headers(tp_src=1234)) == first

    def test_select_group_spreads_flows(self):
        group = Group(
            1, GroupType.SELECT, [Bucket((Output(i),)) for i in range(1, 5)]
        )
        chosen = {
            group.select_buckets(headers(tp_src=p))[0][0] for p in range(1000, 1100)
        }
        assert len(chosen) == 4  # all buckets used across 100 flows

    def test_select_weights_bias_distribution(self):
        group = Group(
            1,
            GroupType.SELECT,
            [Bucket((Output(1),), weight=9), Bucket((Output(2),), weight=1)],
        )
        counts = [0, 0]
        for p in range(1000, 1500):
            index = group.select_buckets(headers(tp_src=p))[0][0]
            counts[index] += 1
        assert counts[0] > counts[1] * 3

    def test_zero_weight_select_bucket_never_chosen(self):
        group = Group(
            1,
            GroupType.SELECT,
            [Bucket((Output(1),), weight=0), Bucket((Output(2),), weight=1)],
        )
        for p in range(1000, 1050):
            assert group.select_buckets(headers(tp_src=p))[0][0] == 1

    def test_fast_failover_picks_first_live(self):
        group = Group(
            1,
            GroupType.FAST_FAILOVER,
            [
                Bucket((Output(1),), watch_port=1),
                Bucket((Output(2),), watch_port=2),
            ],
        )
        up = {1: False, 2: True}
        chosen = group.select_buckets(headers(), port_up=lambda p: up[p])
        assert chosen[0][0] == 1
        up[2] = False
        assert group.select_buckets(headers(), port_up=lambda p: up[p]) == []

    def test_flow_hash_stable(self):
        assert flow_hash(headers()) == flow_hash(headers())
        assert flow_hash(headers(1000)) != flow_hash(headers(1001))

    def test_bucket_accounting(self):
        group = Group(1, GroupType.SELECT, [Bucket((Output(1),))])
        group.account(0, 500)
        assert group.bucket_bytes[0] == 500

    def test_invalid_groups(self):
        with pytest.raises(GroupError):
            Group(1, GroupType.ALL, [])
        with pytest.raises(GroupError):
            Group(-1, GroupType.ALL, [Bucket((Output(1),))])
        with pytest.raises(GroupError):
            Group(1, GroupType.SELECT, [Bucket((Output(1),), weight=0)])
        with pytest.raises(GroupError):
            Bucket((Output(1),), weight=-1)


class TestGroupTable:
    def test_add_get_delete(self):
        table = GroupTable()
        table.add(1, GroupType.ALL, [Bucket((Output(1),))])
        assert 1 in table
        assert table.get(1).group_type is GroupType.ALL
        table.delete(1)
        assert 1 not in table

    def test_duplicate_add_rejected(self):
        table = GroupTable()
        table.add(1, GroupType.ALL, [Bucket((Output(1),))])
        with pytest.raises(GroupError):
            table.add(1, GroupType.ALL, [Bucket((Output(1),))])

    def test_modify_replaces_buckets(self):
        table = GroupTable()
        table.add(1, GroupType.SELECT, [Bucket((Output(1),))])
        table.modify(1, GroupType.SELECT, [Bucket((Output(2),))])
        bucket = table.get(1).buckets[0]
        assert bucket.actions[0].port == 2
        with pytest.raises(GroupError):
            table.modify(9, GroupType.ALL, [Bucket((Output(1),))])

    def test_unknown_lookups(self):
        table = GroupTable()
        with pytest.raises(GroupError):
            table.get(5)
        with pytest.raises(GroupError):
            table.delete(5)


class TestMeter:
    def test_cap_rate_clamps(self):
        meter = Meter(1, [DropBand(rate_bps=1e6)])
        assert meter.cap_rate(5e5) == 5e5
        assert meter.cap_rate(5e6) == 1e6

    def test_lowest_band_binds(self):
        meter = Meter(1, [DropBand(rate_bps=2e6), DropBand(rate_bps=1e6)])
        assert meter.rate_bps == 1e6

    def test_fluid_accounting(self):
        meter = Meter(1, [DropBand(rate_bps=8e6)])  # 1 MB/s
        meter.account_fluid(offered_bps=16e6, duration_s=1.0)
        assert meter.in_bytes == 2_000_000
        assert meter.dropped_bytes == 1_000_000

    def test_token_bucket_admits_within_rate(self):
        meter = Meter(1, [DropBand(rate_bps=8e6, burst_bits=8e4)])
        # 10 KB of tokens; a 1 KB packet fits, a huge one doesn't.
        assert meter.admit_packet(1000, now=0.0)
        assert not meter.admit_packet(100_000, now=0.0)
        assert meter.dropped_packets == 1

    def test_token_bucket_refills_over_time(self):
        meter = Meter(1, [DropBand(rate_bps=8e3, burst_bits=8e3)])  # 1 KB/s
        assert meter.admit_packet(1000, now=0.0)  # drains the bucket
        assert not meter.admit_packet(1000, now=0.1)
        assert meter.admit_packet(1000, now=1.1)  # refilled

    def test_time_going_backwards_rejected(self):
        meter = Meter(1, [DropBand(rate_bps=1e6)])
        meter.admit_packet(100, now=5.0)
        with pytest.raises(MeterError):
            meter.admit_packet(100, now=4.0)

    def test_invalid_meters(self):
        with pytest.raises(MeterError):
            Meter(1, [])
        with pytest.raises(MeterError):
            DropBand(rate_bps=0)
        with pytest.raises(MeterError):
            DropBand(rate_bps=1e6, burst_bits=-1)
        with pytest.raises(MeterError):
            Meter(1, [DropBand(rate_bps=1e6)]).cap_rate(-1)


class TestMeterTable:
    def test_crud(self):
        table = MeterTable()
        table.add(1, [DropBand(rate_bps=1e6)])
        assert 1 in table
        table.modify(1, [DropBand(rate_bps=2e6)])
        assert table.get(1).rate_bps == 2e6
        table.delete(1)
        assert len(table) == 0

    def test_errors(self):
        table = MeterTable()
        with pytest.raises(MeterError):
            table.get(1)
        with pytest.raises(MeterError):
            table.modify(1, [DropBand(rate_bps=1e6)])
        with pytest.raises(MeterError):
            table.delete(1)
        table.add(1, [DropBand(rate_bps=1e6)])
        with pytest.raises(MeterError):
            table.add(1, [DropBand(rate_bps=1e6)])
