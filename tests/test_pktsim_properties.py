"""Property tests for the pktsim invariants the hybrid engine leans on.

The hybrid coupler assumes three things about the packet substrate:

1. **Byte conservation through queues** — every byte a source injects
   is delivered, dropped, or never arrives at a down link; port and
   queue counters agree along every direction.
2. **FIFO per port** — an output queue never reorders packets, even
   under a time-varying transmit rate (exactly what the hybrid
   residual-capacity hook supplies).
3. **Residual capacity is never negative** — whatever fair-share load
   the background solver reports, the foreground transmit rate stays at
   or above the configured floor and at or below the link rate.

Each is checked under randomized workloads with hypothesis.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Horse, HorseConfig
from repro.hybrid.engine import RESIDUAL_FLOOR
from repro.net.generators import linear, single_switch
from repro.openflow import attach_pipeline
from repro.pktsim import Packet, PacketLevelEngine
from repro.pktsim.queues import OutputQueue
from repro.runtime.scenario import reset_id_counters
from repro.sim import Simulator

from conftest import install_ip_path
from workloads import make_flow

FORWARDING = {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}}

flow_spec_st = st.tuples(
    st.integers(min_value=0, max_value=3),            # src host index
    st.integers(min_value=0, max_value=3),            # dst host index
    st.floats(min_value=0.5e6, max_value=12e6),       # demand_bps
    st.integers(min_value=5_000, max_value=400_000),  # size_bytes
    st.floats(min_value=0.0, max_value=1.0),          # start_time
    st.booleans(),                                    # elastic
)


def _submit_specs(topo, engine_like, specs):
    hosts = sorted(h.name for h in topo.hosts)
    count = 0
    for i, (si, di, demand, size, start, elastic) in enumerate(specs):
        src, dst = hosts[si], hosts[di]
        if src == dst:
            continue
        engine_like.submit(
            make_flow(topo, src, dst, demand, size=size, start=start,
                      sport=1000 + i, elastic=elastic)
        )
        count += 1
    return count


class TestByteConservation:
    @given(specs=st.lists(flow_spec_st, min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_bytes_conserved_through_queues(self, specs):
        reset_id_counters()
        topo = single_switch(4, capacity_bps=10e6)
        attach_pipeline(topo.switch("s1"), num_tables=2)
        hosts = sorted(h.name for h in topo.hosts)
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    install_ip_path(topo, src, dst)
        sim = Simulator()
        engine = PacketLevelEngine(sim, topo, queue_capacity_packets=8)
        if not _submit_specs(topo, engine, specs):
            return
        sim.run(until=30.0)

        # Queue/port agreement on every direction that carried traffic:
        # what the queue transmitted is what the source port sent, and
        # (links stayed up) what the far port received.
        for direction, queue in engine._queues.items():
            assert direction.src_port.tx_bytes == queue.transmitted_bytes
            assert direction.dst_port.rx_bytes == queue.transmitted_bytes

        # Flow-level conservation: nothing is created, everything a
        # source injected is accounted delivered, dropped, or in flight
        # (zero in flight after the horizon drains the queues).
        total_sent = sum(f.bytes_sent for f in engine.flows.values())
        total_delivered = sum(f.bytes_delivered for f in engine.flows.values())
        assert total_delivered <= total_sent
        if (
            engine.stats["drops_congestion"] == 0
            and engine.stats["drops_policy"] == 0
            and engine.stats["drops_no_route"] == 0
            and engine.stats["drops_loop"] == 0
            and engine.stats["drops_meter"] == 0
            and all(f.finished for f in engine.flows.values())
        ):
            for flow in engine.flows.values():
                assert flow.bytes_delivered == flow.bytes_sent


class TestFifoOrdering:
    @given(
        sizes=st.lists(
            st.integers(min_value=64, max_value=1500), min_size=1, max_size=40
        ),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=2e-3), min_size=40, max_size=40
        ),
        rate_steps=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_queue_never_reorders_even_under_varying_rate(
        self, sizes, gaps, rate_steps
    ):
        """Arrival order out of one OutputQueue equals accepted enqueue
        order, for any packet sizes, arrival times, and any (positive)
        time-varying capacity function — the hybrid residual hook."""
        topo = linear(2, hosts_per_switch=1, capacity_bps=10e6)
        port = topo.host("h1").uplink_port
        direction = port.link.direction_from(port)
        sim = Simulator()

        # Piecewise capacity: multiplier cycles as transmissions finish,
        # emulating background load changing between sync ticks.
        calls = {"n": 0}

        def residual(d):
            calls["n"] += 1
            return d.capacity_bps * rate_steps[calls["n"] % len(rate_steps)]

        arrived = []
        accepted = []
        queue = OutputQueue(
            sim,
            direction,
            capacity_packets=16,
            on_arrival=lambda packet, dst: arrived.append(packet.packet_id),
            on_drop=lambda packet, d: None,
            capacity_fn=residual,
        )

        h1, h2 = topo.host("h1"), topo.host("h2")
        headers = make_flow(topo, "h1", "h2", 1e6, size=1000).headers

        def _enqueue(sim_, packet):
            if queue.enqueue(packet):
                accepted.append(packet.packet_id)

        at = 0.0
        for i, size in enumerate(sizes):
            at += gaps[i % len(gaps)]
            packet = Packet(headers=headers, size_bytes=size, flow_id=1,
                            src="h1", dst="h2", sent_at=at)
            sim.call_at(at, _enqueue, packet)
        sim.run()

        assert arrived == accepted
        assert queue.depth == 0


class TestResidualCapacity:
    @given(
        specs=st.lists(flow_spec_st, min_size=1, max_size=6),
        top_k=st.integers(min_value=0, max_value=3),
        horizon=st.floats(min_value=0.2, max_value=3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_residual_never_negative_never_above_capacity(
        self, specs, top_k, horizon
    ):
        """At any instant of a randomized hybrid run, every direction's
        residual capacity sits in [floor * capacity, capacity]."""
        reset_id_counters()
        topo = single_switch(4, capacity_bps=10e6)
        horse = Horse(
            topo,
            policies=FORWARDING,
            config=HorseConfig(engine="hybrid", hybrid_select=f"top:{top_k}"),
        )
        if not _submit_specs(topo, horse.engine, specs):
            return
        horse.run(until=horizon)
        engine = horse.engine
        for direction in topo.directions():
            residual = engine._residual_capacity(direction)
            capacity = direction.capacity_bps
            floor = capacity * RESIDUAL_FLOOR
            assert residual >= floor or math.isclose(residual, floor)
            assert residual <= capacity or math.isclose(residual, capacity)
            assert engine.background.background_load(direction) >= 0.0
