"""Property tests for the compacting pending-event set.

Two invariants back the E14 kernel work:

1. **Pop-order transparency** — under any interleaving of push, cancel,
   reschedule, and compaction, :class:`HeapEventQueue` pops the same
   live-event sequence as a never-compacting reference heap.  Compaction
   only removes entries that would never have fired, so it must be
   invisible to simulated behavior (this is what keeps run digests
   stable).
2. **Bounded memory** — with the default 0.5 threshold the raw heap
   never grows past ~2x the live events under sustained
   cancel/reschedule churn, the scalability property the pure-lazy
   kernel lacked.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Event, HeapEventQueue, Simulator


def _drain(queue):
    """Pop everything, returning the (time, seq) keys of live events."""
    out = []
    while len(queue):
        event = queue.pop()
        if not event.cancelled:
            out.append((event.time, event.seq))
    return out


# One workload step: (op, time_fraction, target_fraction).  The
# fractions pick the event time and which pending event to target, so
# any generated list is a valid program.
_STEPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "cancel", "reschedule", "compact", "pop"]),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(steps=_STEPS, threshold=st.sampled_from([0.25, 0.5, 0.9]))
def test_property_compaction_is_pop_order_transparent(steps, threshold):
    """Random push/cancel/reschedule/compact programs pop identically on
    a compacting queue and a never-compacting reference heap."""
    queue = HeapEventQueue(compaction_threshold=threshold, min_compact_size=4)
    reference = HeapEventQueue(compaction_threshold=None)
    live = []  # (mine, ref) pairs still expected in both queues
    seq = 0
    popped_mine = []
    popped_ref = []

    def push_pair(time):
        nonlocal seq
        a, b = Event(time), Event(time)
        a.seq = b.seq = seq
        seq += 1
        queue.push(a)
        reference.push(b)
        live.append((a, b))

    for op, tfrac, pick in steps:
        time = round(tfrac * 100.0, 3)
        if op == "push":
            push_pair(time)
        elif op == "cancel" and live:
            mine, ref = live.pop(int(pick * (len(live) - 0.001)))
            mine.cancel()
            ref.cancel()
            queue.note_cancel(mine)
        elif op == "reschedule" and live:
            # Tombstone replacement, mirrored on both queues.
            idx = int(pick * (len(live) - 0.001))
            mine, ref = live.pop(idx)
            mine.cancel()
            ref.cancel()
            queue.note_cancel(mine)
            push_pair(time)
        elif op == "compact":
            queue.compact()
        elif op == "pop":
            while len(queue):
                a = queue.pop()
                if not a.cancelled:
                    popped_mine.append((a.time, a.seq))
                    break
            while len(reference):
                b = reference.pop()
                if not b.cancelled:
                    popped_ref.append((b.time, b.seq))
                    break
            assert popped_mine == popped_ref

    assert popped_mine + _drain(queue) == popped_ref + _drain(reference)


@settings(max_examples=20, deadline=None)
@given(seed_times=st.lists(
    st.floats(min_value=0.0, max_value=10.0), min_size=8, max_size=32
))
def test_property_heap_bounded_under_churn(seed_times):
    """Sustained cancel+push churn keeps the raw heap within ~2x live."""
    queue = HeapEventQueue(compaction_threshold=0.5, min_compact_size=8)
    sim = Simulator(queue=queue)
    events = [sim.call_at(t, lambda s: None) for t in sorted(seed_times)]
    live = len(events)
    for round_no in range(50):
        for i, event in enumerate(events):
            sim.cancel(event)
            events[i] = sim.call_at(
                event.time + round_no + 1.0, lambda s: None
            )
        assert len(queue) <= 2 * live + queue.min_compact_size
    assert queue.compactions > 0


def test_churn_memory_bound_at_scale():
    """Deterministic large-churn check: 1k live timers, 40 reschedule
    rounds — raw heap stays ~2x live (the pure-lazy kernel would grow
    to 40x)."""
    queue = HeapEventQueue(compaction_threshold=0.5, min_compact_size=64)
    sim = Simulator(queue=queue)
    n = 1000
    timers = [sim.call_at(float(i + 1), lambda s: None) for i in range(n)]
    peak = 0
    for round_no in range(40):
        for i, timer in enumerate(timers):
            timers[i] = sim.reschedule(timer, timer.time + 0.5)
        peak = max(peak, len(queue))
    assert peak <= 2 * n + queue.min_compact_size
    assert sim.pending == n


def test_compact_preserves_exact_pop_sequence():
    """Compacting mid-stream yields the byte-identical pop sequence."""
    plain = HeapEventQueue(compaction_threshold=None)
    compacting = HeapEventQueue(compaction_threshold=None)
    pairs = []
    for i, t in enumerate([5.0, 1.0, 3.0, 1.0, 2.0, 4.0, 1.0, 9.0]):
        a, b = Event(t), Event(t)
        a.seq = b.seq = i
        plain.push(a)
        compacting.push(b)
        pairs.append((a, b))
    for idx in (0, 3, 5):
        pairs[idx][0].cancel()
        pairs[idx][1].cancel()
    compacting.compact()
    assert _drain(plain) == _drain(compacting)
    assert compacting.stale_discarded == 3


def test_invalid_queue_parameters_rejected():
    with pytest.raises(ValueError):
        HeapEventQueue(compaction_threshold=0.0)
    with pytest.raises(ValueError):
        HeapEventQueue(compaction_threshold=1.5)
    with pytest.raises(ValueError):
        HeapEventQueue(min_compact_size=-1)
