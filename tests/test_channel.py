"""Control channel tests: southbound application, stats, errors, latency."""

import pytest

from repro.control import ControlChannel, Controller
from repro.errors import UnknownDatapathError
from repro.net import IPv4Address
from repro.openflow import (
    ApplyActions,
    Bucket,
    DropBand,
    GroupType,
    Match,
    Output,
)
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    ErrorMsg,
    FlowMod,
    FlowModCommand,
    FlowStatsRequest,
    GroupMod,
    GroupModCommand,
    MeterMod,
    MeterModCommand,
    PortStatsRequest,
    TableStatsRequest,
)
from repro.sim import Simulator


@pytest.fixture
def wired(line2):
    sim = Simulator()
    controller = Controller()
    channel = ControlChannel(sim, line2, controller=controller)
    return sim, line2, controller, channel


def add_mod(dpid, priority=1, **match_fields):
    return FlowMod(
        dpid=dpid,
        command=FlowModCommand.ADD,
        match=Match(**match_fields),
        priority=priority,
        instructions=(ApplyActions((Output(1),)),),
    )


class TestFlowMods:
    def test_add_installs_entry(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        channel.send(add_mod(dpid))
        assert topo.switch("s1").pipeline.total_entries == 1
        assert channel.stats["flow_mods"] == 1

    def test_delete_emits_flow_removed(self, wired):
        _, topo, controller, channel = wired
        dpid = topo.switch("s1").dpid
        channel.send(add_mod(dpid))
        channel.send(
            FlowMod(dpid=dpid, command=FlowModCommand.DELETE, match=Match())
        )
        assert topo.switch("s1").pipeline.total_entries == 0
        assert controller.stats["flow_removed"] == 1

    def test_modify_strict(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        channel.send(add_mod(dpid, priority=5))
        channel.send(
            FlowMod(
                dpid=dpid,
                command=FlowModCommand.MODIFY_STRICT,
                match=Match(),
                priority=5,
                instructions=(ApplyActions((Output(2),)),),
            )
        )
        entry = topo.switch("s1").pipeline.table(0).entries[0]
        assert entry.instructions[0].actions[0].port == 2

    def test_unknown_dpid_returns_error_message(self, wired):
        _, _, controller, channel = wired
        reply = channel.send(add_mod(dpid=999))
        assert isinstance(reply, ErrorMsg)
        assert controller.stats["errors"] == 1
        assert channel.stats["errors"] == 1

    def test_bad_table_returns_error(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        mod = add_mod(dpid)
        mod.table_id = 99
        reply = channel.send(mod)
        assert isinstance(reply, ErrorMsg)


class TestGroupAndMeterMods:
    def test_group_lifecycle(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        channel.send(
            GroupMod(
                dpid=dpid,
                command=GroupModCommand.ADD,
                group_id=1,
                group_type=GroupType.SELECT,
                buckets=(Bucket((Output(1),)),),
            )
        )
        pipeline = topo.switch("s1").pipeline
        assert 1 in pipeline.groups
        channel.send(
            GroupMod(
                dpid=dpid,
                command=GroupModCommand.MODIFY,
                group_id=1,
                group_type=GroupType.ALL,
                buckets=(Bucket((Output(2),)),),
            )
        )
        assert pipeline.groups.get(1).group_type is GroupType.ALL
        channel.send(
            GroupMod(dpid=dpid, command=GroupModCommand.DELETE, group_id=1)
        )
        assert 1 not in pipeline.groups

    def test_meter_lifecycle(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        channel.send(
            MeterMod(
                dpid=dpid,
                command=MeterModCommand.ADD,
                meter_id=2,
                bands=(DropBand(rate_bps=1e6),),
            )
        )
        pipeline = topo.switch("s1").pipeline
        assert pipeline.meters.get(2).rate_bps == 1e6
        channel.send(
            MeterMod(
                dpid=dpid,
                command=MeterModCommand.MODIFY,
                meter_id=2,
                bands=(DropBand(rate_bps=2e6),),
            )
        )
        assert pipeline.meters.get(2).rate_bps == 2e6
        channel.send(
            MeterMod(dpid=dpid, command=MeterModCommand.DELETE, meter_id=2)
        )
        assert len(pipeline.meters) == 0


class TestStatsAndBarrier:
    def test_port_stats_reply(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        reply = channel.send(PortStatsRequest(dpid=dpid))
        assert len(reply.stats) == len(topo.switch("s1").ports)
        single = channel.send(PortStatsRequest(dpid=dpid, port_no=1))
        assert len(single.stats) == 1

    def test_flow_stats_filtering(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        mod = add_mod(dpid, ip_dst=IPv4Address("10.0.0.1"))
        mod.cookie = 7
        channel.send(mod)
        channel.send(add_mod(dpid, priority=2, ip_dst=IPv4Address("11.0.0.1")))
        by_cookie = channel.send(FlowStatsRequest(dpid=dpid, cookie=7))
        assert len(by_cookie.stats) == 1
        from repro.net import IPv4Network

        by_match = channel.send(
            FlowStatsRequest(dpid=dpid, match=Match(ip_dst=IPv4Network("10.0.0.0/8")))
        )
        assert len(by_match.stats) == 1
        assert by_match.stats[0]["cookie"] == 7

    def test_table_stats(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        reply = channel.send(TableStatsRequest(dpid=dpid))
        assert len(reply.stats) == 2  # conftest attaches 2 tables

    def test_barrier(self, wired):
        _, topo, _, channel = wired
        dpid = topo.switch("s1").dpid
        request = BarrierRequest(dpid=dpid)
        reply = channel.send(request)
        assert isinstance(reply, BarrierReply)
        assert reply.xid == request.xid


class TestLatency:
    def test_latency_defers_application(self, line2):
        sim = Simulator()
        controller = Controller()
        channel = ControlChannel(sim, line2, controller=controller, latency_s=0.5)
        dpid = line2.switch("s1").dpid
        assert channel.send(add_mod(dpid)) is None
        assert line2.switch("s1").pipeline.total_entries == 0
        sim.run(until=0.4)
        assert line2.switch("s1").pipeline.total_entries == 0
        sim.run(until=0.6)
        assert line2.switch("s1").pipeline.total_entries == 1

    def test_negative_latency_rejected(self, line2):
        with pytest.raises(Exception):
            ControlChannel(Simulator(), line2, latency_s=-1)


class TestEngineNotification:
    def test_engines_notified_on_rule_change(self, wired):
        _, topo, _, channel = wired

        class FakeEngine:
            def __init__(self):
                self.dpids = []

            def notify_rules_changed(self, dpid):
                self.dpids.append(dpid)

        engine = FakeEngine()
        channel.connect_engine(engine)
        channel.connect_engine(engine)  # idempotent
        assert len(channel.engines) == 1
        dpid = topo.switch("s1").dpid
        channel.send(add_mod(dpid))
        assert engine.dpids == [dpid]

    def test_datapath_ids_sorted(self, wired):
        _, topo, _, channel = wired
        assert channel.datapath_ids() == sorted(
            s.dpid for s in topo.switches
        )
