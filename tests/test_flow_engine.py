"""Flow-level engine tests: fluid dynamics, routing, failures, meters."""

import pytest

from repro.flowsim import FlowLevelEngine, FlowState, Terminal
from repro.openflow import (
    ApplyActions,
    Drop,
    DropBand,
    GotoTable,
    Match,
    MeterInstruction,
    Output,
)
from repro.sim import Simulator

from workloads import make_flow


class TestFluidDynamics:
    def test_single_flow_runs_at_demand(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, size=1_000_000)
        engine.submit(flow)
        sim.run()
        # 1 MB at 4 Mbps = 2 s
        assert flow.state is FlowState.COMPLETED
        assert flow.end_time == pytest.approx(2.0)
        assert flow.bytes_delivered == pytest.approx(1_000_000)

    def test_two_flows_share_bottleneck_hand_computed(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        f1 = make_flow(line2, "h1", "h2", demand=8e6, size=10_000_000)
        f2 = make_flow(line2, "h1", "h2", demand=8e6, size=5_000_000,
                       start=1.0, sport=1001)
        engine.submit_all([f1, f2])
        sim.run()
        # Worked out by hand: see DESIGN.md E3 notes.
        assert f2.end_time == pytest.approx(9.0)
        assert f1.end_time == pytest.approx(13.0)

    def test_demand_limited_flow_leaves_headroom(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        small = make_flow(line2, "h1", "h2", demand=2e6, duration=10.0)
        big = make_flow(line2, "h1", "h2", demand=100e6, duration=10.0, sport=1001)
        engine.submit_all([small, big])
        sim.run(until=5.0)
        assert small.rate_bps == pytest.approx(2e6)
        assert big.rate_bps == pytest.approx(8e6)

    def test_duration_flow_ends_on_time(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, duration=3.0)
        engine.submit(flow)
        sim.run()
        engine.finish()
        assert flow.state is FlowState.ENDED
        assert flow.end_time == pytest.approx(3.0)
        assert flow.bytes_sent == pytest.approx(4e6 * 3 / 8, rel=1e-6)

    def test_completion_rate_changes_reproject(self, line2, install_path):
        """A flow slowed mid-life completes later than first projected."""
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        f1 = make_flow(line2, "h1", "h2", demand=10e6, size=2_500_000)
        # Alone, f1 would finish at t=2.0; f2 halves its rate at t=1.
        f2 = make_flow(line2, "h1", "h2", demand=10e6, duration=10.0,
                       start=1.0, sport=1001)
        engine.submit_all([f1, f2])
        sim.run()
        # f1: 1 s at 10 Mb/s (1.25 MB) + 1.25 MB at 5 Mb/s = 2 s more.
        assert f1.end_time == pytest.approx(3.0)

    def test_inelastic_flow_records_drops(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        udp = make_flow(line2, "h1", "h2", demand=20e6, duration=2.0,
                        elastic=False)
        engine.submit(udp)
        sim.run()
        engine.finish()
        # Offered 20 Mb/s over a 10 Mb/s link for 2 s: half is dropped.
        assert udp.bytes_dropped == pytest.approx(10e6 * 2 / 8, rel=1e-6)

    def test_stop_flow(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=1e6, duration=100.0)
        engine.submit(flow)
        sim.call_at(1.0, lambda s: engine.stop_flow(flow))
        sim.run(until=5.0)
        assert flow.state is FlowState.ENDED
        assert flow.end_time == pytest.approx(1.0)


class TestRoutingOutcomes:
    def test_no_rules_means_no_match(self, line2):
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=1e6, size=1000)
        engine.submit(flow)
        sim.run(until=1.0)
        assert flow.route.terminal is Terminal.NO_MATCH
        assert not flow.delivered
        assert engine.stats["undelivered"] == 1

    def test_blackholed_flow_burns_upstream_links(self, line2, install_path):
        install_path(line2, "h1", "h2")
        # Drop at s2, higher priority than forwarding.
        line2.switch("s2").pipeline.install(
            Match(), (ApplyActions((Drop(),)),), priority=100
        )
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, duration=2.0)
        engine.submit(flow)
        sim.run()
        engine.finish()
        assert flow.route.terminal is Terminal.BLACKHOLED
        # Link h1->s1 and s1->s2 carried the traffic; s2->h2 did not.
        s1s2 = line2.link_between("s1", "s2")
        s2h2 = line2.link_between("s2", "h2")
        assert s1s2.port_a.tx_bytes + s1s2.port_b.tx_bytes > 0
        assert s2h2.port_a.tx_bytes + s2h2.port_b.tx_bytes == 0
        assert flow.bytes_sent > 0 and flow.bytes_delivered == 0

    def test_meter_on_path_caps_rate(self, line2, install_path):
        # Table 0: meter then goto table 1; forwarding lives in table 1.
        for name in ("s1", "s2"):
            pipeline = line2.switch(name).pipeline
            pipeline.install(Match(), (GotoTable(1),), priority=0, table_id=0)
        pipeline = line2.switch("s1").pipeline
        pipeline.meters.add(1, [DropBand(rate_bps=3e6)])
        pipeline.install(
            Match(ip_dst=line2.host("h2").ip),
            (MeterInstruction(1), GotoTable(1)),
            priority=10,
            table_id=0,
        )
        # Forwarding in table 1.
        dst = line2.host("h2")
        for name, nxt in (("s1", "s2"), ("s2", "h2")):
            out = line2.egress_port(name, nxt)
            line2.switch(name).pipeline.install(
                Match(ip_dst=dst.ip),
                (ApplyActions((Output(out.number),)),),
                priority=10,
                table_id=1,
            )
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=8e6, size=3_000_000)
        engine.submit(flow)
        sim.run()
        # 3 MB at 3 Mb/s (metered) = 8 s.
        assert flow.end_time == pytest.approx(8.0)

    def test_loop_guard_terminates(self):
        """A forwarding ring (s1->s2->s3->s1) must not hang the walk."""
        from repro.net import Topology
        from repro.openflow import attach_pipeline

        topo = Topology()
        switches = [topo.add_switch(f"s{i + 1}") for i in range(3)]
        h1 = topo.add_host("h1")
        topo.add_link(h1, switches[0])
        topo.add_link(switches[0], switches[1])
        topo.add_link(switches[1], switches[2])
        topo.add_link(switches[2], switches[0])
        topo.add_host("h2")  # exists but never connected to the ring exit
        topo.add_link("h2", switches[1])
        for s in switches:
            attach_pipeline(s)
        # Ring rules: each switch forwards to the next switch only.
        for current, nxt in zip(switches, switches[1:] + switches[:1]):
            out = topo.egress_port(current, nxt)
            current.pipeline.install(
                Match(), (ApplyActions((Output(out.number),)),)
            )
        sim = Simulator()
        engine = FlowLevelEngine(sim, topo, max_hops=10)
        flow = make_flow(topo, "h1", "h2", demand=1e6, size=1000)
        engine.submit(flow)
        sim.run(until=1.0)
        assert flow.route.terminal is Terminal.LOOPED


class TestLinkFailures:
    def _build_mesh(self):
        from repro.net import Topology
        from repro.openflow import attach_pipeline
        from repro.control import ControlChannel, Controller
        from repro.control.apps import ShortestPathApp

        from repro.net.generators import full_mesh

        topo = full_mesh(3, hosts_per_switch=1)
        for s in topo.switches:
            attach_pipeline(s)
        sim = Simulator()
        controller = Controller()
        controller.add_app(ShortestPathApp(match_on="ip_dst"))
        channel = ControlChannel(sim, topo, controller=controller)
        engine = FlowLevelEngine(sim, topo, control=channel)
        channel.connect_engine(engine)
        controller.start()
        return topo, sim, engine

    def test_failure_triggers_reroute_via_controller(self):
        topo, sim, engine = self._build_mesh()
        flow = make_flow(topo, "h1", "h2", demand=1e6, duration=10.0)
        engine.submit(flow)
        engine.fail_link_at(2.0, "s1", "s2")
        sim.run()
        engine.finish()
        assert flow.reroutes >= 1
        assert flow.delivered
        # Final route goes the long way round (4 links, not 3).
        assert len(flow.route.directions) == 4
        assert flow.state is FlowState.ENDED

    def test_recovery_restores_short_path(self):
        topo, sim, engine = self._build_mesh()
        flow = make_flow(topo, "h1", "h2", demand=1e6, duration=10.0)
        engine.submit(flow)
        engine.fail_link_at(2.0, "s1", "s2")
        engine.restore_link_at(5.0, "s1", "s2")
        sim.run()
        engine.finish()
        assert len(flow.route.directions) == 3
        assert flow.delivered

    def test_port_status_sent_to_controller(self):
        topo, sim, engine = self._build_mesh()
        controller = engine.control.controller
        engine.fail_link_at(1.0, "s1", "s2")
        sim.run(until=2.0)
        assert controller.stats["port_status"] == 2  # both endpoints


class TestStatisticsAccrual:
    def test_port_counters_match_flow_bytes(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, size=1_000_000)
        engine.submit(flow)
        sim.run()
        engine.finish()
        uplink = line2.host("h1").uplink_port
        assert uplink.tx_bytes == pytest.approx(1_000_000, abs=2)
        h2_port = line2.host("h2").uplink_port
        assert h2_port.rx_bytes == pytest.approx(1_000_000, abs=2)

    def test_entry_counters_accrue(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, size=1_000_000)
        engine.submit(flow)
        sim.run()
        engine.finish()
        entry = line2.switch("s1").pipeline.table(0).entries[0]
        assert entry.byte_count == pytest.approx(1_000_000, abs=2)
        assert entry.packet_count > 0

    def test_sync_statistics_is_idempotent(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=4e6, duration=4.0)
        engine.submit(flow)
        sim.run(until=2.0)
        engine.sync_statistics()
        first = flow.bytes_sent
        engine.sync_statistics()
        assert flow.bytes_sent == first
        assert first == pytest.approx(4e6 * 2 / 8, rel=1e-6)

    def test_observers_see_lifecycle(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        events = []
        engine.observers.append(lambda name, f: events.append(name))
        flow = make_flow(line2, "h1", "h2", demand=4e6, size=1000)
        engine.submit(flow)
        sim.run()
        assert events[0] == "delivered" or events[0] == "arrival"
        assert "completed" in events

    def test_summary_shape(self, line2, install_path):
        install_path(line2, "h1", "h2")
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        engine.submit(make_flow(line2, "h1", "h2", demand=1e6, size=1000))
        sim.run()
        summary = engine.summary()
        assert summary["completed"] == 1
        assert summary["total_flows"] == 1
        assert summary["bytes_delivered"] >= 1000


class TestSubmitValidation:
    def test_double_submit_rejected(self, line2):
        sim = Simulator()
        engine = FlowLevelEngine(sim, line2)
        flow = make_flow(line2, "h1", "h2", demand=1e6, size=1000)
        engine.submit(flow)
        with pytest.raises(Exception):
            engine.submit(flow)

    def test_past_start_rejected(self, line2):
        sim = Simulator()
        sim.call_at(5.0, lambda s: None)
        sim.run()
        engine = FlowLevelEngine(sim, line2)
        with pytest.raises(Exception):
            engine.submit(make_flow(line2, "h1", "h2", demand=1e6, size=1000))

    def test_flow_validation(self, line2):
        with pytest.raises(ValueError):
            make_flow(line2, "h1", "h2", demand=0, size=1000)
        with pytest.raises(ValueError):
            make_flow(line2, "h1", "h2", demand=1e6, size=0)
        with pytest.raises(ValueError):
            make_flow(line2, "h1", "h2", demand=1e6, size=100, duration=1.0)
