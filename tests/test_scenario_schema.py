"""Scenario schema versioning: v0 migration, validation, Scenario API.

The api_redesign contract for documents: ``schema_version: 1`` nests
runtime knobs into sections mirroring the config dataclasses; legacy
v0 documents (flat ``hybrid_*``/``wire_*`` top-level keys plus a
``runtime`` section) migrate losslessly with warn-once deprecations;
validation reports dotted paths.  The hypothesis round-trip pins the
lossless part over the whole migratable key space.
"""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.runtime.schema import (
    SCHEMA_VERSION,
    V0_RUNTIME_KEYS,
    V0_TOP_KEYS,
    Scenario,
    ensure_v1,
    migrate_scenario,
    reset_scenario_warnings,
    scenario_version,
    shard_section,
    validate_scenario,
)


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_scenario_warnings()
    yield
    reset_scenario_warnings()


BASE = {
    "engine": "flow",
    "until": 2.0,
    "topology": {"kind": "star", "hosts": 4},
    "policies": {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
    "traffic": {"kind": "matrix", "model": "uniform", "total": "50 Mbps"},
}


def v0_doc(**extra) -> dict:
    doc = json.loads(json.dumps(BASE))
    doc.update(extra)
    return doc


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
def test_v0_top_keys_move_into_sections():
    doc, notes = migrate_scenario(
        v0_doc(hybrid_select="top:2", monitor_interval_s=1.0)
    )
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["hybrid"]["select"] == "top:2"
    assert doc["telemetry"]["monitor_interval_s"] == 1.0
    assert "hybrid_select" not in doc
    assert any("schema_version" in note for note in notes)


def test_v0_runtime_section_moves_and_dissolves():
    doc, _notes = migrate_scenario(
        v0_doc(
            runtime={
                "trace_path": "run.jsonl",
                "checkpoint_path": "run.ckpt",
                "checkpoint_interval_s": 1.0,
                "wire_sync_quantum_s": 0.1,
            }
        )
    )
    assert "runtime" not in doc
    assert doc["telemetry"]["trace_path"] == "run.jsonl"
    assert doc["checkpoint"] == {"path": "run.ckpt", "interval_s": 1.0}
    assert doc["wire"]["sync_quantum_s"] == 0.1


def test_unknown_runtime_key_errors():
    with pytest.raises(ExperimentError, match="runtime"):
        migrate_scenario(v0_doc(runtime={"warp_factor": 9}))


def test_explicit_v1_values_win_over_flat_leftovers():
    doc, _ = migrate_scenario(
        v0_doc(hybrid={"select": "all"}, hybrid_select="none")
    )
    assert doc["hybrid"]["select"] == "all"


def test_migration_does_not_mutate_input():
    original = v0_doc(monitor_interval_s=1.0)
    snapshot = json.loads(json.dumps(original))
    migrate_scenario(original)
    assert original == snapshot


def test_ensure_v1_idempotent_and_warns_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = ensure_v1(v0_doc(hybrid_select="all"))
        again = ensure_v1(first)
    assert again == first
    dep = [w for w in caught if w.category is DeprecationWarning]
    assert sum("hybrid_select" in str(w.message) for w in dep) == 1


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_validate_reports_dotted_paths():
    bad = v0_doc()
    bad["schema_version"] = 1
    bad["telemetry"] = {"monitor_interval_s": "fast"}
    with pytest.raises(ExperimentError, match="telemetry.monitor_interval_s"):
        validate_scenario(bad)


def test_validate_rejects_unknown_section_key():
    bad = v0_doc()
    bad["schema_version"] = 1
    bad["wire"] = {"listne": "127.0.0.1:0"}
    with pytest.raises(ExperimentError, match="wire"):
        validate_scenario(bad)


def test_validate_rejects_future_schema_version():
    bad = v0_doc()
    bad["schema_version"] = 99
    with pytest.raises(ExperimentError, match="schema_version"):
        validate_scenario(bad)


def test_shard_section_accepts_bare_int():
    doc = v0_doc()
    doc["schema_version"] = 1
    doc["shards"] = 4
    assert shard_section(doc) == {"count": 4}
    doc["shards"] = {"count": 2, "quantum_s": 0.5}
    assert shard_section(doc)["quantum_s"] == 0.5


def test_kernel_section_validates_and_round_trips():
    doc = v0_doc()
    doc["schema_version"] = 1
    doc["kernel"] = {
        "queue": "heap",
        "compaction_threshold": 0.25,
        "min_compact_size": 16,
    }
    validate_scenario(doc)
    from repro.runtime.scenario import build_config

    config = build_config(doc)
    assert config.kernel.queue == "heap"
    assert config.kernel.compaction_threshold == 0.25
    assert config.kernel.min_compact_size == 16
    # null means "use the default" per the JSON convention...
    doc["kernel"] = {"compaction_threshold": None}
    validate_scenario(doc)
    # ...but KernelConfig treats an explicit None as "disable".
    assert build_config(doc).kernel.compaction_threshold is None


def test_kernel_section_rejects_bad_values():
    doc = v0_doc()
    doc["schema_version"] = 1
    doc["kernel"] = {"queue": "fibonacci"}
    with pytest.raises(ExperimentError, match="kernel.queue"):
        validate_scenario(doc)
    doc["kernel"] = {"compaction_threshold": 2.0}
    with pytest.raises(ExperimentError, match="kernel.compaction_threshold"):
        validate_scenario(doc)
    doc["kernel"] = {"queue": "heap", "min_compact_size": "lots"}
    with pytest.raises(ExperimentError, match="kernel.min_compact_size"):
        validate_scenario(doc)
    doc["kernel"] = {"compactor": True}
    with pytest.raises(ExperimentError, match="kernel.compactor"):
        validate_scenario(doc)


# ----------------------------------------------------------------------
# Lossless round-trip over the migratable key space (property test)
# ----------------------------------------------------------------------
_V0_VALUE_STRATEGIES = {
    "hybrid_select": st.sampled_from(["none", "all", "top:2", "top:5"]),
    "hybrid_sync_interval_s": st.floats(0.01, 1.0, allow_nan=False),
    "wire_client": st.sampled_from(["learning", "static", None]),
    "monitor_interval_s": st.floats(0.1, 10.0, allow_nan=False),
    "link_sample_interval_s": st.floats(0.1, 10.0, allow_nan=False),
}
_RUNTIME_VALUE_STRATEGIES = {
    "monitor_mode": st.sampled_from(["poll", "push"]),
    "monitor_push_min_delta_bytes": st.floats(0, 1e6, allow_nan=False),
    "trace_path": st.sampled_from(["a.jsonl", "b.jsonl"]),
    "profile": st.booleans(),
    "checkpoint_path": st.sampled_from(["a.ckpt", "b.ckpt"]),
    "checkpoint_interval_s": st.floats(0.1, 10.0, allow_nan=False),
    "wire_listen": st.sampled_from(["127.0.0.1:0", "0.0.0.0:6653"]),
    "wire_sync_quantum_s": st.floats(0.01, 1.0, allow_nan=False),
    "wire_latency_budget_s": st.floats(0.1, 10.0, allow_nan=False),
    "wire_dilation": st.floats(0.0, 2.0, allow_nan=False),
}


@settings(max_examples=60, deadline=None)
@given(
    top=st.dictionaries(
        st.sampled_from(sorted(_V0_VALUE_STRATEGIES)), st.none(), max_size=5
    ).flatmap(
        lambda keys: st.fixed_dictionaries(
            {k: _V0_VALUE_STRATEGIES[k] for k in keys}
        )
    ),
    runtime=st.dictionaries(
        st.sampled_from(sorted(_RUNTIME_VALUE_STRATEGIES)), st.none(), max_size=6
    ).flatmap(
        lambda keys: st.fixed_dictionaries(
            {k: _RUNTIME_VALUE_STRATEGIES[k] for k in keys}
        )
    ),
)
def test_migration_round_trip_lossless(top, runtime):
    """Every legacy spelling lands on its documented nested field with
    the value unchanged, the result validates, and re-migration is a
    no-op."""
    reset_scenario_warnings()
    doc = v0_doc(**top)
    if runtime:
        doc["runtime"] = dict(runtime)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        migrated, _notes = migrate_scenario(doc)
        validate_scenario(migrated)
        again, _ = migrate_scenario(migrated)
    assert again == migrated
    assert scenario_version(migrated) == SCHEMA_VERSION
    for old, value in top.items():
        section, field = V0_TOP_KEYS[old]
        assert migrated[section][field] == value
    for old, value in runtime.items():
        section, field = V0_RUNTIME_KEYS[old]
        assert migrated[section][field] == value


# ----------------------------------------------------------------------
# The Scenario convenience class
# ----------------------------------------------------------------------
def test_scenario_class_runs_v0_documents(tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps(v0_doc(monitor_interval_s=1.0)))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        scenario = Scenario.from_file(str(path))
    config = scenario.config()
    assert config.telemetry.monitor_interval_s == 1.0
    _horse, result, count = scenario.run()
    assert count > 0 and result.flows


def test_scenario_class_validates_on_load():
    with pytest.raises(ExperimentError, match="engine"):
        Scenario({**BASE, "engine": "quantum"})
