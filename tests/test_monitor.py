"""Monitoring tests: counter polling, utilization estimation, thresholds."""

import pytest

from repro.control import ControlChannel, Controller, NetworkMonitor
from repro.control.apps import ShortestPathApp
from repro.flowsim import Flow, FlowLevelEngine
from repro.openflow import attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator


@pytest.fixture
def running(line2, install_path):
    install_path(line2, "h1", "h2")
    sim = Simulator()
    controller = Controller()
    channel = ControlChannel(sim, line2, controller=controller)
    engine = FlowLevelEngine(sim, line2, control=channel)
    channel.connect_engine(engine)
    return sim, line2, channel, engine


def steady_flow(topo, demand=8e6, duration=10.0):
    h1, h2 = topo.host("h1"), topo.host("h2")
    return Flow(
        headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
        src="h1",
        dst="h2",
        demand_bps=demand,
        duration_s=duration,
    )


class TestSampling:
    def test_rates_derived_from_counter_deltas(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        engine.submit(steady_flow(topo, demand=8e6))
        sim.run(until=5.0)
        # After warm-up, the s1->s2 egress carries 8 Mb/s.
        sample = monitor.samples[-1]
        key = ("s1", topo.egress_port("s1", "s2").number)
        assert sample["tx_bps"][key] == pytest.approx(8e6, rel=0.05)
        assert sample["utilization"][key] == pytest.approx(0.8, rel=0.05)

    def test_first_sample_has_no_rates(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        sim.run(until=1.5)
        assert monitor.samples[0]["tx_bps"] == {}

    def test_congested_list_respects_threshold(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, threshold=0.5)
        monitor.start()
        engine.submit(steady_flow(topo, demand=8e6))
        sim.run(until=5.0)
        key = ("s1", topo.egress_port("s1", "s2").number)
        assert key in monitor.samples[-1]["congested"]

    def test_idle_network_not_congested(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, threshold=0.5)
        monitor.start()
        sim.run(until=3.0)
        assert all(not s["congested"] for s in monitor.samples)

    def test_callbacks_invoked(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        seen = []
        monitor.callbacks.append(lambda s: seen.append(s["time"]))
        monitor.start()
        sim.run(until=3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_history_can_be_disabled(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, keep_history=False)
        monitor.start()
        sim.run(until=3.0)
        assert monitor.samples == []

    def test_start_is_idempotent(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        monitor.start()
        sim.run(until=2.5)
        assert len(monitor.samples) == 2

    def test_invalid_interval(self, running):
        _, _, channel, _ = running
        with pytest.raises(ValueError):
            NetworkMonitor(channel, interval=0)


class TestSeriesHelpers:
    def test_utilization_series_and_max(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        engine.submit(steady_flow(topo, demand=4e6, duration=3.0))
        sim.run(until=6.0)
        key = ("s1", topo.egress_port("s1", "s2").number)
        series = monitor.utilization_series(key)
        assert len(series) >= 3
        peak = monitor.max_utilization()[key]
        assert peak == pytest.approx(0.4, rel=0.1)
