"""Monitoring tests: counter polling, pushes, utilization, thresholds."""

import warnings

import pytest

from repro.control import ControlChannel, Controller, NetworkMonitor
from repro.flowsim import Flow, FlowLevelEngine
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator
from repro.telemetry import MonitorSample


@pytest.fixture
def running(line2, install_path):
    install_path(line2, "h1", "h2")
    sim = Simulator()
    controller = Controller()
    channel = ControlChannel(sim, line2, controller=controller)
    engine = FlowLevelEngine(sim, line2, control=channel)
    channel.connect_engine(engine)
    return sim, line2, channel, engine


def steady_flow(topo, demand=8e6, duration=10.0):
    h1, h2 = topo.host("h1"), topo.host("h2")
    return Flow(
        headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
        src="h1",
        dst="h2",
        demand_bps=demand,
        duration_s=duration,
    )


class TestSampling:
    def test_rates_derived_from_counter_deltas(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        engine.submit(steady_flow(topo, demand=8e6))
        sim.run(until=5.0)
        # After warm-up, the s1->s2 egress carries 8 Mb/s.
        sample = monitor.samples[-1]
        key = ("s1", topo.egress_port("s1", "s2").number)
        assert sample.tx_bps[key] == pytest.approx(8e6, rel=0.05)
        assert sample.utilization[key] == pytest.approx(0.8, rel=0.05)

    def test_first_sample_has_no_rates(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        sim.run(until=1.5)
        assert monitor.samples[0].tx_bps == {}

    def test_congested_list_respects_threshold(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, threshold=0.5)
        monitor.start()
        engine.submit(steady_flow(topo, demand=8e6))
        sim.run(until=5.0)
        key = ("s1", topo.egress_port("s1", "s2").number)
        assert key in monitor.samples[-1].congested

    def test_idle_network_not_congested(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, threshold=0.5)
        monitor.start()
        sim.run(until=3.0)
        assert all(not s.congested for s in monitor.samples)

    def test_callbacks_invoked(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        seen = []
        monitor.callbacks.append(lambda s: seen.append(s.time))
        monitor.start()
        sim.run(until=3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_history_can_be_disabled(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, keep_history=False)
        monitor.start()
        sim.run(until=3.0)
        assert monitor.samples == []

    def test_start_is_idempotent(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        monitor.start()
        sim.run(until=2.5)
        assert len(monitor.samples) == 2

    def test_invalid_interval(self, running):
        _, _, channel, _ = running
        with pytest.raises(ValueError):
            NetworkMonitor(channel, interval=0)

    def test_invalid_mode(self, running):
        _, _, channel, _ = running
        with pytest.raises(ValueError):
            NetworkMonitor(channel, interval=1.0, mode="pull")


class TestPushMode:
    def test_push_samples_on_cadence(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, mode="push")
        monitor.start()
        engine.submit(steady_flow(topo, demand=8e6))
        sim.run(until=4.5)
        assert [s.time for s in monitor.samples] == [1.0, 2.0, 3.0, 4.0]
        key = ("s1", topo.egress_port("s1", "s2").number)
        assert monitor.samples[-1].tx_bps[key] == pytest.approx(8e6, rel=0.05)
        assert channel.stats["counter_pushes"] == 4

    def test_min_delta_suppresses_idle_pushes(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(
            channel, interval=1.0, mode="push", min_delta_bytes=1000.0
        )
        monitor.start()
        sim.run(until=5.5)
        # First push delivers (no baseline yet); the idle rest suppress.
        assert len(monitor.samples) == 1

    def test_min_delta_delivers_when_counters_move(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(
            channel, interval=1.0, mode="push", min_delta_bytes=1000.0
        )
        monitor.start()
        engine.submit(steady_flow(topo, demand=8e6, duration=2.5))
        sim.run(until=6.5)
        times = [s.time for s in monitor.samples]
        # Active seconds push; the idle tail is suppressed.
        assert 1.0 in times and 2.0 in times
        assert times[-1] <= 4.0

    def test_stop_cancels_subscription(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, mode="push")
        monitor.start()
        sim.run(until=2.5)
        monitor.stop()
        sim.run(until=6.0)
        assert len(monitor.samples) == 2
        assert channel.subscriptions == []


class TestSeriesHelpers:
    def test_utilization_series_and_max(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        engine.submit(steady_flow(topo, demand=4e6, duration=3.0))
        sim.run(until=6.0)
        key = ("s1", topo.egress_port("s1", "s2").number)
        series = monitor.utilization_series(key)
        assert len(series) >= 3
        peak = monitor.max_utilization()[key]
        assert peak == pytest.approx(0.4, rel=0.1)

    def test_aggregates_survive_disabled_history(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0, keep_history=False)
        monitor.start()
        engine.submit(steady_flow(topo, demand=4e6, duration=3.0))
        sim.run(until=6.0)
        key = ("s1", topo.egress_port("s1", "s2").number)
        assert monitor.samples == []
        assert monitor.max_utilization()[key] == pytest.approx(0.4, rel=0.1)

    def test_mutated_history_falls_back_to_scan(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        engine.submit(steady_flow(topo, demand=4e6, duration=3.0))
        sim.run(until=6.0)
        key = ("s1", topo.egress_port("s1", "s2").number)
        # Drop the peak samples; the helpers must notice and re-scan.
        monitor.samples[:] = [s for s in monitor.samples if not s.utilization]
        assert monitor.max_utilization().get(key) is None
        assert monitor.utilization_series(key) == []

    def test_spliced_raw_dict_sample_tolerated(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        sim.run(until=2.5)
        monitor.samples.append(
            {"time": 9.0, "utilization": {("s9", 1): 0.7}, "congested": []}
        )
        assert monitor.max_utilization()[("s9", 1)] == 0.7
        assert monitor.utilization_series(("s9", 1)) == [(9.0, 0.7)]


class TestSampleShim:
    def test_mapping_access_warns_once_per_call_site(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        sim.run(until=3.5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for sample in monitor.samples:
                assert sample["time"] == sample.time  # one call site
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "attribute access" in str(deprecations[0].message)

    def test_get_contains_keys_shims(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        sim.run(until=1.5)
        sample = monitor.samples[0]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert sample.get("tx_bps") == {}
            assert sample.get("nope", 42) == 42
            assert "utilization" in sample
            assert "time" in list(sample.keys())
        with pytest.raises(KeyError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                sample["nope"]

    def test_as_dict_is_warning_free(self, running):
        sim, topo, channel, engine = running
        monitor = NetworkMonitor(channel, interval=1.0)
        monitor.start()
        sim.run(until=1.5)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            doc = monitor.samples[0].as_dict()
        assert doc["time"] == 1.0


class TestMonitorSampleUnit:
    def test_fields_and_defaults(self):
        sample = MonitorSample(time=1.0)
        assert sample.tx_bps == {} and sample.congested == []

    def test_as_dict_round_trip(self):
        sample = MonitorSample(
            time=2.0, tx_bps={("s1", 1): 5.0}, utilization={("s1", 1): 0.5}
        )
        doc = sample.as_dict()
        assert doc["utilization"] == {("s1", 1): 0.5}
