"""Golden-scenario regression tests.

Every shipped example scenario has its run digest pinned in
examples/scenarios/GOLDEN_DIGESTS.json: sha256 over the canonical run
JSON with the wall-clock field removed (see
:func:`repro.stats.export.run_digest`).  A digest change means the
simulation *dynamics* changed — solver arithmetic, event ordering,
routing, id assignment — which must be an intentional, explained
change, never drift.

The digests are also independent of ``PYTHONHASHSEED`` (the CI
hash-independence matrix runs these same checks under two seeds), so
they double as an end-to-end determinism gate.
"""

import json
import os

import pytest

from repro.runtime.scenario import reset_id_counters, run_scenario
from repro.stats.export import run_digest

SCENARIO_DIR = os.path.join(
    os.path.dirname(__file__), "..", "examples", "scenarios"
)


def _load(name):
    with open(os.path.join(SCENARIO_DIR, name)) as handle:
        return json.load(handle)


GOLDEN = {
    key: value
    for key, value in _load("GOLDEN_DIGESTS.json").items()
    if not key.startswith("_")
}


def _scenario_for(name):
    doc = _load(name)
    # Sweep specs pin their base scenario's run.
    return doc["base"] if "base" in doc else doc


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scenario_matches_golden_digest(name):
    reset_id_counters()
    _, result, count = run_scenario(_scenario_for(name))
    assert count > 0
    assert run_digest(result) == GOLDEN[name], (
        f"{name}: run dynamics changed; if intentional, update "
        "examples/scenarios/GOLDEN_DIGESTS.json with the new digest"
    )


def test_every_runnable_scenario_is_pinned():
    """New example scenarios must ship with a pinned digest (the
    deliberately mis-composed analyzer fixture is exempt)."""
    exempt = {"miscomposed.json"}
    shipped = {
        name
        for name in os.listdir(SCENARIO_DIR)
        if name.endswith(".json")
        and name not in exempt
        and name != "GOLDEN_DIGESTS.json"
    }
    # solver_scale_sweep is a large sweep spec, too slow for tier-1.
    shipped.discard("solver_scale_sweep.json")
    assert shipped == set(GOLDEN)


def test_digest_ignores_wall_clock():
    reset_id_counters()
    _, result, _ = run_scenario(_scenario_for("quickstart.json"))
    before = run_digest(result)
    result.wall_time_s += 123.0
    assert run_digest(result) == before
