"""Max-min fairness solver tests: hand cases + properties + parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.fairshare import (
    EPSILON_BPS,
    RELATIVE_EPSILON,
    FlowDemand,
    IncrementalSolver,
    affected_component,
    demand_eps,
    saturation_eps,
    solve,
    solve_arrays,
)


def fd(flow_id, demand, links):
    return FlowDemand(flow_id, demand, links)


class TestHandCases:
    def test_two_flows_split_one_link(self):
        alloc = solve([fd("a", 10, ["l"]), fd("b", 10, ["l"])], {"l": 10})
        assert alloc == {"a": 5.0, "b": 5.0}

    def test_demand_limited_flow_frees_capacity(self):
        alloc = solve([fd("a", 2, ["l"]), fd("b", 100, ["l"])], {"l": 10})
        assert alloc["a"] == pytest.approx(2.0)
        assert alloc["b"] == pytest.approx(8.0)

    def test_multi_bottleneck_chain(self):
        # a crosses l1 (cap 10) and l2 (cap 4); b crosses l2 only.
        alloc = solve(
            [fd("a", 100, ["l1", "l2"]), fd("b", 100, ["l2"])],
            {"l1": 10, "l2": 4},
        )
        assert alloc["a"] == pytest.approx(2.0)
        assert alloc["b"] == pytest.approx(2.0)

    def test_classic_parking_lot(self):
        # Long flow crosses both links; two short flows one link each.
        alloc = solve(
            [
                fd("long", 100, ["l1", "l2"]),
                fd("s1", 100, ["l1"]),
                fd("s2", 100, ["l2"]),
            ],
            {"l1": 10, "l2": 10},
        )
        assert alloc["long"] == pytest.approx(5.0)
        assert alloc["s1"] == pytest.approx(5.0)
        assert alloc["s2"] == pytest.approx(5.0)

    def test_unequal_bottlenecks_shift_share(self):
        alloc = solve(
            [fd("a", 100, ["l1"]), fd("b", 100, ["l1", "l2"])],
            {"l1": 10, "l2": 3},
        )
        assert alloc["b"] == pytest.approx(3.0)
        assert alloc["a"] == pytest.approx(7.0)

    def test_linkless_flow_gets_demand(self):
        alloc = solve([fd("a", 7, [])], {})
        assert alloc == {"a": 7.0}

    def test_zero_demand_flow(self):
        alloc = solve([fd("a", 0, ["l"]), fd("b", 10, ["l"])], {"l": 10})
        assert alloc["a"] == 0.0
        assert alloc["b"] == pytest.approx(10.0)

    def test_duplicate_links_deduplicated(self):
        demand = fd("a", 100, ["l", "l", "l"])
        assert demand.links == ("l",)
        alloc = solve([demand], {"l": 10})
        assert alloc["a"] == pytest.approx(10.0)

    def test_missing_capacity_raises(self):
        with pytest.raises(KeyError):
            solve([fd("a", 1, ["ghost"])], {})

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            fd("a", -1, [])

    def test_empty_input(self):
        assert solve([], {}) == {}
        assert solve_arrays(
            np.empty(0), np.empty(0), np.empty(0, np.intp), np.empty(0, np.intp)
        ).size == 0


# ----------------------------------------------------------------------
# Random instances shared by the property tests
# ----------------------------------------------------------------------

instances = st.integers(min_value=0, max_value=10_000).flatmap(
    lambda seed: st.just(seed)
)


def build_instance(seed):
    import random

    rng = random.Random(seed)
    num_links = rng.randint(1, 12)
    num_flows = rng.randint(1, 40)
    caps = {f"l{i}": rng.uniform(1.0, 1000.0) for i in range(num_links)}
    flows = []
    for i in range(num_flows):
        count = rng.randint(0, min(5, num_links))
        links = rng.sample(sorted(caps), count)
        flows.append(fd(i, rng.uniform(0.1, 500.0), links))
    return flows, caps


@settings(max_examples=120, deadline=None)
@given(instances)
def test_property_feasibility_and_demand_cap(seed):
    """No link over capacity; no flow above demand; no negative rates."""
    flows, caps = build_instance(seed)
    alloc = solve(flows, caps)
    for flow in flows:
        assert -1e-9 <= alloc[flow.flow_id] <= flow.demand_bps + 1e-6
    for link, cap in caps.items():
        used = sum(alloc[f.flow_id] for f in flows if link in f.links)
        assert used <= cap * (1 + 1e-6) + 1e-6


@settings(max_examples=120, deadline=None)
@given(instances)
def test_property_max_min_condition(seed):
    """Every flow is either demand-satisfied or crosses a saturated link
    on which it has a maximal rate — the max-min optimality condition."""
    flows, caps = build_instance(seed)
    alloc = solve(flows, caps)
    tol = 1e-5
    for flow in flows:
        rate = alloc[flow.flow_id]
        if rate >= flow.demand_bps - max(tol, tol * flow.demand_bps):
            continue
        bottlenecked = False
        for link in flow.links:
            used = sum(alloc[f.flow_id] for f in flows if link in f.links)
            cap = caps[link]
            saturated = used >= cap - max(tol, tol * cap)
            on_link = [alloc[f.flow_id] for f in flows if link in f.links]
            is_max = rate >= max(on_link) - max(tol, tol * max(on_link))
            if saturated and is_max:
                bottlenecked = True
                break
        assert bottlenecked, (flow.flow_id, rate, flow.demand_bps)


@settings(max_examples=120, deadline=None)
@given(instances)
def test_property_scalar_vector_parity(seed):
    """The NumPy solver matches the scalar solver."""
    flows, caps = build_instance(seed)
    ref = solve(flows, caps)
    link_index = {name: i for i, name in enumerate(sorted(caps))}
    fo, lo = [], []
    for i, flow in enumerate(flows):
        for link in flow.links:
            fo.append(i)
            lo.append(link_index[link])
    vec = solve_arrays(
        np.asarray([f.demand_bps for f in flows]),
        np.asarray([caps[name] for name in sorted(caps)]),
        np.asarray(fo, dtype=np.intp),
        np.asarray(lo, dtype=np.intp),
    )
    for i, flow in enumerate(flows):
        expected = ref[flow.flow_id]
        assert vec[i] == pytest.approx(expected, rel=1e-4, abs=1e-4)


@settings(max_examples=60, deadline=None)
@given(instances)
def test_property_incremental_matches_full(seed):
    """Incremental updates converge to the same allocation as full solves
    across a random add/remove schedule."""
    import random

    flows, caps = build_instance(seed)
    rng = random.Random(seed + 1)
    incremental = IncrementalSolver()
    current = []
    pending = list(flows)
    rng.shuffle(pending)
    while pending or current:
        if pending and (not current or rng.random() < 0.6):
            flow = pending.pop()
            current.append(flow)
            changed = {flow.flow_id}
        else:
            flow = current.pop(rng.randrange(len(current)))
            changed = {flow.flow_id}
        got = incremental.update(current, caps, changed)
        want = solve(current, caps)
        for f in current:
            assert got[f.flow_id] == pytest.approx(
                want[f.flow_id], rel=1e-5, abs=1e-5
            )


class TestRelativeTolerance:
    """The saturation/demand thresholds scale with magnitude: at 100 Gbps
    one ulp is ~1.5e-5 bps, so the legacy absolute 1e-6 bps threshold sat
    *below* float rounding noise and saturated links could be missed."""

    CAP_100G = 100e9

    def test_saturation_eps_is_relative_at_100g(self):
        eps = saturation_eps(self.CAP_100G)
        assert eps == RELATIVE_EPSILON * self.CAP_100G  # 100 bps
        # It must exceed one ulp of the capacity, or rounding during the
        # fill loop defeats saturation detection.
        assert eps > np.spacing(self.CAP_100G)
        # Small capacities keep the absolute floor.
        assert saturation_eps(1.0) == EPSILON_BPS
        assert demand_eps(self.CAP_100G) > np.spacing(self.CAP_100G)

    def test_two_flows_split_100g_link_exactly(self):
        alloc = solve(
            [fd("a", self.CAP_100G, ["l"]), fd("b", self.CAP_100G, ["l"])],
            {"l": self.CAP_100G},
        )
        assert alloc == {"a": 50e9, "b": 50e9}

    def test_three_way_split_saturates_despite_rounding(self):
        # cap/3 is inexact in binary; the three shares need not sum back
        # to exactly cap.  The relative threshold must still classify the
        # link as saturated and hold every flow at the fair share.
        cap = self.CAP_100G
        alloc = solve(
            [fd("a", cap, ["l"]), fd("b", cap, ["l"]), fd("c", cap, ["l"])],
            {"l": cap},
        )
        share = cap / 3.0
        assert all(rate == pytest.approx(share, rel=1e-12)
                   for rate in alloc.values())
        assert sum(alloc.values()) <= cap + saturation_eps(cap)

    def test_100g_parking_lot(self):
        # Classic parking lot at 100G: the shared link saturates, the
        # demand-limited flow frees its slack to the others.
        cap = self.CAP_100G
        alloc = solve(
            [
                fd("long", cap, ["l1", "l2"]),
                fd("short1", cap, ["l1"]),
                fd("limited", 10e9, ["l2"]),
            ],
            {"l1": cap, "l2": cap},
        )
        assert alloc["limited"] == 10e9
        assert alloc["long"] == pytest.approx(cap / 2.0, rel=1e-12)
        assert alloc["short1"] == pytest.approx(cap / 2.0, rel=1e-12)

    def test_incremental_matches_solve_at_100g(self):
        cap = self.CAP_100G
        flows = [
            fd("a", cap, ["l1", "l2"]),
            fd("b", cap / 3.0, ["l1"]),
            fd("c", cap, ["l2"]),
        ]
        caps = {"l1": cap, "l2": cap}
        solver = IncrementalSolver()
        for flow in flows:
            solver.upsert(flow)
        solver.resolve(caps)
        assert {f.flow_id: solver.alloc[f.flow_id] for f in flows} == solve(
            flows, caps
        )


class TestAffectedComponent:
    def test_transitive_closure(self):
        flows = [
            fd("a", 1, ["l1"]),
            fd("b", 1, ["l1", "l2"]),
            fd("c", 1, ["l2"]),
            fd("d", 1, ["l9"]),
        ]
        component = affected_component(flows, ["a"])
        assert component == {"a", "b", "c"}

    def test_unknown_seed_ignored(self):
        assert affected_component([fd("a", 1, ["l"])], ["ghost"]) == set()

    def test_incremental_scope_is_smaller_for_disjoint_flows(self):
        caps = {"l1": 10, "l2": 10}
        incremental = IncrementalSolver()
        a = fd("a", 5, ["l1"])
        b = fd("b", 5, ["l2"])
        incremental.update([a], caps, {"a"})
        incremental.update([a, b], caps, {"b"})
        assert incremental.last_scope == 1  # only b's component re-solved
