"""CLI tests: topo/info/run subcommands end to end."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def topo_file(tmp_path):
    path = str(tmp_path / "topo.json")
    assert main(["topo", "--kind", "fat-tree", "--k", "4", "--out", path]) == 0
    return path


class TestTopoCommands:
    def test_generate_fat_tree(self, topo_file):
        with open(topo_file) as handle:
            doc = json.load(handle)
        assert len(doc["nodes"]) == 36
        assert len(doc["links"]) == 48

    def test_generate_ixp(self, tmp_path, capsys):
        path = str(tmp_path / "ixp.json")
        rc = main(
            ["topo", "--kind", "ixp", "--members", "8", "--seed", "3",
             "--out", path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "members" not in out or path in out

    def test_info(self, topo_file, capsys):
        assert main(["info", topo_file]) == 0
        out = capsys.readouterr().out
        assert "hosts    : 16" in out
        assert "switches : 20" in out

    def test_info_missing_file(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestRunCommand:
    def _scenario(self, tmp_path, **overrides):
        scenario = {
            "engine": "flow",
            "seed": 5,
            "until": 30.0,
            "topology": {"kind": "star", "hosts": 4},
            "policies": {
                "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
            },
            "traffic": {
                "kind": "matrix",
                "model": "uniform",
                "total": "50 Mbps",
                "horizon_s": 1.0,
            },
        }
        scenario.update(overrides)
        path = str(tmp_path / "scenario.json")
        with open(path, "w") as handle:
            json.dump(scenario, handle)
        return path

    def test_run_prints_summary(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "flows submitted" in out

    def test_run_writes_artifacts(self, tmp_path):
        path = self._scenario(tmp_path)
        csv_path = str(tmp_path / "flows.csv")
        json_path = str(tmp_path / "run.json")
        rc = main(["run", path, "--flows-csv", csv_path, "--json", json_path])
        assert rc == 0
        with open(json_path) as handle:
            doc = json.load(handle)
        assert doc["delivered_fraction"] == 1.0
        with open(csv_path) as handle:
            assert handle.readline().startswith("flow_id,")

    def test_run_from_topology_file(self, tmp_path, topo_file):
        path = self._scenario(tmp_path, topology={"file": topo_file})
        assert main(["run", path]) == 0

    def test_run_with_trace_traffic(self, tmp_path):
        # Build a trace against the same star topology.
        import random

        from repro.net.generators import single_switch
        from repro.traffic import FlowGenerator, TrafficMatrix, save_trace

        topo = single_switch(4)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 10e6)
        flows = FlowGenerator(topo, random.Random(1)).from_matrix(tm, 1.0)
        trace_path = str(tmp_path / "trace.jsonl")
        save_trace(flows, trace_path)
        path = self._scenario(
            tmp_path, traffic={"kind": "trace", "file": trace_path}
        )
        assert main(["run", path]) == 0

    def test_gravity_ixp_requires_ixp_topology(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path,
            traffic={"kind": "matrix", "model": "gravity-ixp",
                     "total": "1 Gbps"},
        )
        assert main(["run", path]) == 1
        assert "gravity-ixp" in capsys.readouterr().err

    def test_gravity_ixp_with_ixp_topology(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path,
            topology={"kind": "ixp", "members": 8, "seed": 1},
            traffic={
                "kind": "matrix",
                "model": "gravity-ixp",
                "total": "1 Gbps",
                "horizon_s": 0.5,
            },
        )
        assert main(["run", path]) == 0

    def test_unknown_topology_kind(self, tmp_path, capsys):
        path = self._scenario(tmp_path, topology={"kind": "torus"})
        assert main(["run", path]) == 1

    def test_bad_scenario_json(self, tmp_path, capsys):
        path = str(tmp_path / "broken.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert main(["run", path]) == 1

    def test_run_json_has_engine_stats(self, tmp_path):
        path = self._scenario(tmp_path)
        json_path = str(tmp_path / "run.json")
        assert main(["run", path, "--json", json_path]) == 0
        with open(json_path) as handle:
            stats = json.load(handle)["engine_stats"]
        assert stats["engine"] == "flow"
        assert stats["solver_mode"] == "incremental"
        for key in ("route_cache_hits", "route_cache_misses", "rate_solves"):
            assert isinstance(stats[key], int)
        assert "resolves" in stats["solver"]

    def test_identical_runs_emit_identical_json(self, tmp_path):
        """Two identical invocations must produce byte-identical run
        documents modulo the wall-clock field."""
        path = self._scenario(tmp_path)
        docs = []
        for name in ("a.json", "b.json"):
            out = str(tmp_path / name)
            assert main(["run", path, "--json", out]) == 0
            with open(out) as handle:
                doc = json.load(handle)
            assert doc.pop("wall_time_s") > 0
            docs.append(json.dumps(doc, sort_keys=True))
        assert docs[0] == docs[1]

    def test_full_round_trip_topo_info_run(self, tmp_path, capsys):
        """topo -> info -> run entirely through the CLI on a temp dir."""
        topo_path = str(tmp_path / "rt.json")
        assert main(
            ["topo", "--kind", "leaf-spine", "--out", topo_path]
        ) == 0
        assert main(["info", topo_path]) == 0
        scenario = self._scenario(tmp_path, topology={"file": topo_path})
        assert main(["run", scenario]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out


class TestCheckpointCommands:
    def _scenario(self, tmp_path):
        return TestRunCommand()._scenario(tmp_path, until=5.0)

    def test_checkpoint_then_restore(self, tmp_path, capsys):
        scenario = self._scenario(tmp_path)
        ckpt = str(tmp_path / "state.ckpt")
        assert main(
            ["run", scenario, "--until", "1.0", "--checkpoint", ckpt]
        ) == 0
        assert main(
            ["run", "--restore", ckpt, "--until", "5.0",
             "--json", str(tmp_path / "restored.json")]
        ) == 0
        out = capsys.readouterr().out
        assert "restored checkpoint" in out
        with open(tmp_path / "restored.json") as handle:
            doc = json.load(handle)
        assert doc["sim_time_s"] == 5.0

    def test_restored_run_matches_straight_run(self, tmp_path):
        import pytest

        scenario = self._scenario(tmp_path)
        ckpt = str(tmp_path / "state.ckpt")
        assert main(
            ["run", scenario, "--until", "1.0", "--checkpoint", ckpt]
        ) == 0
        assert main(
            ["run", "--restore", ckpt, "--until", "5.0",
             "--json", str(tmp_path / "restored.json")]
        ) == 0
        assert main(
            ["run", scenario, "--json", str(tmp_path / "straight.json")]
        ) == 0
        docs = []
        for name in ("restored.json", "straight.json"):
            with open(tmp_path / name) as handle:
                doc = json.load(handle)
            doc.pop("wall_time_s")
            docs.append(doc)
        restored, straight = docs
        # The interruption splits running float sums at t=1, so the two
        # aggregate statistics derived from them may differ in the last
        # ulp; everything else — flows, events, counters — is exact.
        for key in ("fairness", "goodput_bps"):
            assert restored.pop(key) == pytest.approx(
                straight.pop(key), rel=1e-9
            )
        assert json.dumps(restored, sort_keys=True) == json.dumps(
            straight, sort_keys=True
        )

    def test_periodic_checkpoint_flag(self, tmp_path):
        scenario = self._scenario(tmp_path)
        ckpt = str(tmp_path / "tick.ckpt")
        assert main(
            ["run", scenario, "--checkpoint", ckpt,
             "--checkpoint-interval", "1.0"]
        ) == 0
        from repro.runtime import read_checkpoint_header

        assert read_checkpoint_header(ckpt)["meta"]["sim_time_s"] > 0

    def test_scenario_and_restore_are_exclusive(self, tmp_path, capsys):
        scenario = self._scenario(tmp_path)
        assert main(["run", scenario, "--restore", "x.ckpt"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_run_needs_scenario_or_restore(self, capsys):
        assert main(["run"]) == 1
        assert "required" in capsys.readouterr().err


class TestSweepCommands:
    def _spec(self, tmp_path, **runtime):
        doc = {
            "name": "cli-sweep",
            "base": {
                "engine": "flow",
                "until": 2.0,
                "topology": {"kind": "star", "hosts": 4},
                "policies": {
                    "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
                },
                "traffic": {
                    "kind": "matrix", "total": "50 Mbps", "horizon_s": 1.0
                },
            },
            "grid": {"solver": ["incremental", "full"], "seed": [1, 2]},
            "runtime": dict(
                {"retries": 2, "backoff_s": 0.01, "timeout_s": 120}, **runtime
            ),
        }
        path = str(tmp_path / "sweep.json")
        with open(path, "w") as handle:
            json.dump(doc, handle)
        return path

    def test_sweep_runs_and_reports(self, tmp_path, capsys):
        spec = self._spec(tmp_path)
        out = str(tmp_path / "out")
        assert main(["sweep", spec, "--out", out, "--workers", "2"]) == 0
        printed = capsys.readouterr().out
        assert "4/4 jobs completed" in printed
        with open(tmp_path / "out" / "report.json") as handle:
            report = json.load(handle)
        assert report["summary"]["completed"] == 4

    def test_sweep_with_injected_crash_retries(self, tmp_path, capsys):
        spec = self._spec(tmp_path, fault={"job": 0, "crashes": 1})
        out = str(tmp_path / "out")
        assert main(["sweep", spec, "--out", out, "--workers", "2"]) == 0
        printed = capsys.readouterr().out
        assert "crash" in printed and "retrying" in printed
        with open(tmp_path / "out" / "report.json") as handle:
            report = json.load(handle)
        assert report["execution"]["retried"] == [0]
        assert report["summary"]["failed"] == []

    def test_sweep_failure_exit_code(self, tmp_path, capsys):
        spec = self._spec(tmp_path, fault={"job": 0, "crashes": 99}, retries=1)
        assert main(
            ["sweep", spec, "--out", str(tmp_path / "out"), "--quiet"]
        ) == 2
        assert "failed jobs: [0]" in capsys.readouterr().err

    def test_resume_command(self, tmp_path, capsys):
        spec = self._spec(tmp_path)
        out = str(tmp_path / "out")
        assert main(["sweep", spec, "--out", out, "--quiet"]) == 0
        assert main(["resume", out, "--quiet"]) == 0
        assert "4/4 jobs completed" in capsys.readouterr().out

    def test_resume_missing_dir(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
