"""CLI tests: topo/info/run subcommands end to end."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def topo_file(tmp_path):
    path = str(tmp_path / "topo.json")
    assert main(["topo", "--kind", "fat-tree", "--k", "4", "--out", path]) == 0
    return path


class TestTopoCommands:
    def test_generate_fat_tree(self, topo_file):
        with open(topo_file) as handle:
            doc = json.load(handle)
        assert len(doc["nodes"]) == 36
        assert len(doc["links"]) == 48

    def test_generate_ixp(self, tmp_path, capsys):
        path = str(tmp_path / "ixp.json")
        rc = main(
            ["topo", "--kind", "ixp", "--members", "8", "--seed", "3",
             "--out", path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "members" not in out or path in out

    def test_info(self, topo_file, capsys):
        assert main(["info", topo_file]) == 0
        out = capsys.readouterr().out
        assert "hosts    : 16" in out
        assert "switches : 20" in out

    def test_info_missing_file(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestRunCommand:
    def _scenario(self, tmp_path, **overrides):
        scenario = {
            "engine": "flow",
            "seed": 5,
            "until": 30.0,
            "topology": {"kind": "star", "hosts": 4},
            "policies": {
                "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
            },
            "traffic": {
                "kind": "matrix",
                "model": "uniform",
                "total": "50 Mbps",
                "horizon_s": 1.0,
            },
        }
        scenario.update(overrides)
        path = str(tmp_path / "scenario.json")
        with open(path, "w") as handle:
            json.dump(scenario, handle)
        return path

    def test_run_prints_summary(self, tmp_path, capsys):
        path = self._scenario(tmp_path)
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "flows submitted" in out

    def test_run_writes_artifacts(self, tmp_path):
        path = self._scenario(tmp_path)
        csv_path = str(tmp_path / "flows.csv")
        json_path = str(tmp_path / "run.json")
        rc = main(["run", path, "--flows-csv", csv_path, "--json", json_path])
        assert rc == 0
        with open(json_path) as handle:
            doc = json.load(handle)
        assert doc["delivered_fraction"] == 1.0
        with open(csv_path) as handle:
            assert handle.readline().startswith("flow_id,")

    def test_run_from_topology_file(self, tmp_path, topo_file):
        path = self._scenario(tmp_path, topology={"file": topo_file})
        assert main(["run", path]) == 0

    def test_run_with_trace_traffic(self, tmp_path):
        # Build a trace against the same star topology.
        import random

        from repro.net.generators import single_switch
        from repro.traffic import FlowGenerator, TrafficMatrix, save_trace

        topo = single_switch(4)
        tm = TrafficMatrix.uniform([h.name for h in topo.hosts], 10e6)
        flows = FlowGenerator(topo, random.Random(1)).from_matrix(tm, 1.0)
        trace_path = str(tmp_path / "trace.jsonl")
        save_trace(flows, trace_path)
        path = self._scenario(
            tmp_path, traffic={"kind": "trace", "file": trace_path}
        )
        assert main(["run", path]) == 0

    def test_gravity_ixp_requires_ixp_topology(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path,
            traffic={"kind": "matrix", "model": "gravity-ixp",
                     "total": "1 Gbps"},
        )
        assert main(["run", path]) == 1
        assert "gravity-ixp" in capsys.readouterr().err

    def test_gravity_ixp_with_ixp_topology(self, tmp_path, capsys):
        path = self._scenario(
            tmp_path,
            topology={"kind": "ixp", "members": 8, "seed": 1},
            traffic={
                "kind": "matrix",
                "model": "gravity-ixp",
                "total": "1 Gbps",
                "horizon_s": 0.5,
            },
        )
        assert main(["run", path]) == 0

    def test_unknown_topology_kind(self, tmp_path, capsys):
        path = self._scenario(tmp_path, topology={"kind": "torus"})
        assert main(["run", path]) == 1

    def test_bad_scenario_json(self, tmp_path, capsys):
        path = str(tmp_path / "broken.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert main(["run", path]) == 1
