"""The consolidated configuration API: nested sections + flat shims.

Covers the api_redesign contract: nested section dataclasses are the
real surface, every legacy flat key keeps working through a warn-once
deprecation shim, and the shim inventory (config, scenario schema,
lint rule) stays in sync.
"""

import warnings

import pytest

from repro.core.config import (
    FLAT_KEY_MAP,
    CheckpointConfig,
    HorseConfig,
    HybridConfig,
    KernelConfig,
    ShardConfig,
    TelemetryConfig,
    WireConfig,
    reset_deprecation_warnings,
)
from repro.errors import ExperimentError


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


# ----------------------------------------------------------------------
# Nested construction
# ----------------------------------------------------------------------
def test_default_sections():
    config = HorseConfig()
    assert config.hybrid == HybridConfig()
    assert config.wire == WireConfig()
    assert config.telemetry == TelemetryConfig()
    assert config.checkpoint == CheckpointConfig()
    assert config.shard == ShardConfig()
    assert config.shard.count == 1
    assert config.kernel == KernelConfig()
    assert config.kernel.queue == "heap"
    assert config.kernel.compaction_threshold == 0.5


def test_sections_accept_instances_and_dicts():
    by_instance = HorseConfig(hybrid=HybridConfig(select="top:2"))
    by_dict = HorseConfig(hybrid={"select": "top:2"})
    assert by_instance.hybrid == by_dict.hybrid


def test_section_dict_unknown_key_rejected():
    with pytest.raises(ExperimentError, match="unknown"):
        HorseConfig(wire={"listne": "127.0.0.1:0"})


def test_shard_section_validation():
    assert HorseConfig(shard={"count": 2}).shard.count == 2
    with pytest.raises(ExperimentError, match="count"):
        HorseConfig(shard={"count": 0})
    with pytest.raises(ExperimentError, match="quantum"):
        HorseConfig(shard={"count": 2, "quantum_s": -1.0})
    with pytest.raises(ExperimentError, match="partition"):
        HorseConfig(shard={"count": 2, "partition": "metis"})


def test_kernel_section_validation():
    config = HorseConfig(kernel={"queue": "sorted"})
    assert config.kernel.queue == "sorted"
    assert HorseConfig(
        kernel={"compaction_threshold": None}
    ).kernel.compaction_threshold is None
    with pytest.raises(ExperimentError, match="queue"):
        HorseConfig(kernel={"queue": "fibonacci"})
    with pytest.raises(ExperimentError, match="compaction_threshold"):
        HorseConfig(kernel={"compaction_threshold": 1.5})
    with pytest.raises(ExperimentError, match="compaction_threshold"):
        HorseConfig(kernel={"compaction_threshold": 0.0})
    with pytest.raises(ExperimentError, match="min_compact_size"):
        HorseConfig(kernel={"min_compact_size": -1})
    with pytest.raises(ExperimentError, match="unknown"):
        HorseConfig(kernel={"threshold": 0.5})


def test_sharding_requires_flow_engine_inproc_control():
    with pytest.raises(ExperimentError, match="flow"):
        HorseConfig(engine="packet", shard={"count": 2})
    with pytest.raises(ExperimentError, match="control"):
        HorseConfig(control="wire", shard={"count": 2})
    with pytest.raises(ExperimentError, match="solver"):
        HorseConfig(solver="vector", shard={"count": 2})


# ----------------------------------------------------------------------
# Flat-key deprecation shims
# ----------------------------------------------------------------------
def test_flat_kwargs_route_to_sections():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        config = HorseConfig(
            hybrid_select="all",
            wire_listen="0.0.0.0:6653",
            monitor_interval_s=2.0,
            checkpoint_path="/tmp/x.ckpt",
        )
    assert config.hybrid.select == "all"
    assert config.wire.listen == "0.0.0.0:6653"
    assert config.telemetry.monitor_interval_s == 2.0
    assert config.checkpoint.path == "/tmp/x.ckpt"


def test_flat_kwarg_warns_once_per_key():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        HorseConfig(hybrid_select="all")
        HorseConfig(hybrid_select="none")
        HorseConfig(trace_path="a.jsonl")
    messages = [str(w.message) for w in caught if w.category is DeprecationWarning]
    assert sum("hybrid_select" in m for m in messages) == 1
    assert sum("trace_path" in m for m in messages) == 1
    # ... and the replacement is named so callers know what to write.
    assert any("hybrid.select" in m for m in messages)


def test_flat_property_read_warns_and_aliases():
    config = HorseConfig(hybrid={"select": "top:3"})
    with pytest.warns(DeprecationWarning, match="hybrid.select"):
        assert config.hybrid_select == "top:3"
    reset_deprecation_warnings()
    with pytest.warns(DeprecationWarning):
        assert config.checkpoint_path is None


def test_every_flat_key_has_a_working_shim():
    for flat, (section, field) in FLAT_KEY_MAP.items():
        reset_deprecation_warnings()
        config = HorseConfig()
        with pytest.warns(DeprecationWarning):
            value = getattr(config, flat)
        assert value == getattr(getattr(config, section), field)


def test_flat_and_nested_conflict_rejected():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ExperimentError, match="both"):
            HorseConfig(hybrid={"select": "all"}, hybrid_select="none")


def test_unknown_kwarg_still_rejected():
    with pytest.raises(ExperimentError, match="hybrid_selector"):
        HorseConfig(hybrid_selector="all")


# ----------------------------------------------------------------------
# Shim inventory stays in sync across the codebase
# ----------------------------------------------------------------------
def test_lint_rule_mirrors_flat_key_map():
    from repro.lint.rules.deprecation import FLAT_KEYS

    want = {
        flat: f"{section}.{field}"
        for flat, (section, field) in FLAT_KEY_MAP.items()
    }
    assert FLAT_KEYS == want


def test_prior_semantics_still_validated():
    with pytest.raises(ExperimentError):
        HorseConfig(engine="quantum")
    with pytest.raises(ExperimentError):
        HorseConfig(checkpoint={"interval_s": 5.0})  # needs a path
    with pytest.raises(ExperimentError):
        HorseConfig(telemetry={"monitor_mode": "stream"})
