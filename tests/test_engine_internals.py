"""Engine internals: slot arrays, segment compaction, message plumbing.

These tests exercise machinery the scenario tests only touch
incidentally: the persistent solver arrays behind the vectorized
re-solve, incidence compaction under churn, and the control-message
dataclasses.
"""

import pytest

from repro.flowsim import Flow, FlowLevelEngine, FlowState
from repro.net import IPv4Address
from repro.net.generators import single_switch
from repro.openflow import ApplyActions, Match, Output, attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.openflow.messages import (
    FlowMod,
    FlowModCommand,
    GroupMod,
    MeterMod,
    PacketIn,
    next_xid,
)
from repro.sim import Simulator


def star_with_rules(num_hosts=4, capacity=1e9):
    topo = single_switch(num_hosts, capacity_bps=capacity)
    pipeline = attach_pipeline(topo.switch("s1"))
    for host in topo.hosts:
        out = topo.egress_port("s1", host.name)
        pipeline.install(
            Match(ip_dst=host.ip),
            (ApplyActions((Output(out.number),)),),
            priority=10,
        )
    return topo


def quick_flow(topo, src, dst, sport, size=10_000, start=0.0):
    s, d = topo.host(src), topo.host(dst)
    return Flow(
        headers=tcp_flow(s.ip, d.ip, sport, 80),
        src=src,
        dst=dst,
        demand_bps=100e6,
        size_bytes=size,
        start_time=start,
    )


class TestSlotMachinery:
    def test_slots_are_reused_after_retirement(self):
        topo = star_with_rules()
        sim = Simulator()
        engine = FlowLevelEngine(sim, topo, solver="vector")
        # Sequential flows: each completes before the next arrives, so
        # the same slot serves them all.
        for i in range(20):
            engine.submit(
                quick_flow(topo, "h1", "h2", sport=1000 + i, start=float(i))
            )
        sim.run()
        # Slot 0 is reserved; concurrency was ~1, so very few slots.
        assert len(engine._slot_flow) <= 4
        assert engine._free_slots  # the last flow's slot was freed

    def test_compaction_reclaims_dead_segments(self):
        topo = star_with_rules()
        sim = Simulator()
        engine = FlowLevelEngine(sim, topo, solver="vector")
        # Enough sequential flows that dead incidence entries (2 per
        # flow: access + egress links) exceed the compaction threshold.
        count = 2500
        for i in range(count):
            engine.submit(
                quick_flow(
                    topo,
                    "h1",
                    "h2",
                    sport=1000 + (i % 60000),
                    start=0.001 * i,
                )
            )
        sim.run()
        engine.finish()
        assert engine.stats["completed"] == count
        # Dead entries were reclaimed at least once: the incidence
        # length stayed far below total-ever-appended.
        total_appended = count * 3  # 3 links per flow (h1->s1, s1->h2... )
        assert engine._inc_len < total_appended / 2
        assert engine._inc_dead <= max(4096, engine._inc_len)

    def test_concurrent_flows_get_distinct_slots(self):
        topo = star_with_rules()
        sim = Simulator()
        engine = FlowLevelEngine(sim, topo, solver="vector")
        flows = [
            quick_flow(topo, "h1", "h2", sport=1000 + i, size=10_000_000)
            for i in range(10)
        ]
        engine.submit_all(flows)
        sim.run(until=0.01)
        slots = {engine._slot_of[f.flow_id] for f in flows}
        assert len(slots) == 10
        assert 0 not in slots  # reserved dead slot never assigned

    def test_rates_survive_scalar_vector_boundary(self):
        """Crossing the 48-flow vectorization threshold must not corrupt
        rate bookkeeping (both paths share the slot arrays)."""
        topo = star_with_rules(num_hosts=4, capacity=100e6)
        sim = Simulator()
        engine = FlowLevelEngine(sim, topo, solver="vector")
        # 60 concurrent flows to h2 (vector path), completing gradually
        # down into scalar territory.
        flows = [
            quick_flow(topo, "h1", "h2", sport=2000 + i, size=250_000)
            for i in range(60)
        ]
        engine.submit_all(flows)
        sim.run()
        engine.finish()
        assert all(f.state is FlowState.COMPLETED for f in flows)
        # Conservation: every byte accounted.
        total = sum(f.bytes_delivered for f in flows)
        assert total == pytest.approx(60 * 250_000, rel=1e-9)

    def test_direction_capacity_cache_matches_topology(self):
        topo = star_with_rules(capacity=123e6)
        sim = Simulator()
        engine = FlowLevelEngine(sim, topo, solver="vector")
        engine.submit(quick_flow(topo, "h1", "h2", sport=1000))
        sim.run()
        for direction, index in engine._dir_index.items():
            assert engine._dir_caps[index] == direction.capacity_bps


class TestMessages:
    def test_xids_are_unique_and_monotonic(self):
        a, b = next_xid(), next_xid()
        assert b == a + 1
        m1 = FlowMod(dpid=1)
        m2 = FlowMod(dpid=1)
        assert m2.xid > m1.xid

    def test_flowmod_normalizes_instructions_to_tuple(self):
        mod = FlowMod(
            dpid=1,
            command=FlowModCommand.ADD,
            instructions=[ApplyActions((Output(1),))],
        )
        assert isinstance(mod.instructions, tuple)

    def test_groupmod_and_metermod_normalize_sequences(self):
        from repro.openflow import Bucket, DropBand, GroupType

        gm = GroupMod(dpid=1, group_id=1, group_type=GroupType.ALL,
                      buckets=[Bucket((Output(1),))])
        assert isinstance(gm.buckets, tuple)
        mm = MeterMod(dpid=1, meter_id=1, bands=[DropBand(rate_bps=1.0)])
        assert isinstance(mm.bands, tuple)

    def test_packet_in_carries_flow_context(self):
        message = PacketIn(dpid=3, in_port=2, rate_bps=5e6, flow_id=42)
        assert message.flow_id == 42
        assert message.rate_bps == 5e6


class TestHeaderHelpers:
    def test_describe_renders_set_fields_only(self):
        hdr = tcp_flow(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 5, 80)
        text = hdr.describe()
        assert "ip_src=1.1.1.1" in text
        assert "tp_dst=80" in text
        assert "vlan" not in text
        from repro.openflow import HeaderFields

        assert HeaderFields().describe() == "(any)"

    def test_five_tuple(self):
        hdr = tcp_flow(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 5, 80)
        src, dst, proto, sport, dport = hdr.five_tuple()
        assert str(src) == "1.1.1.1"
        assert (sport, dport) == (5, 80)

    def test_with_fields_returns_new_instance(self):
        hdr = tcp_flow(IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2"), 5, 80)
        other = hdr.with_fields(tp_dst=443)
        assert other.tp_dst == 443
        assert hdr.tp_dst == 80


class TestErrorHierarchy:
    def test_all_errors_derive_from_horse_error(self):
        import inspect

        from repro import errors

        for name, cls in inspect.getmembers(errors, inspect.isclass):
            if issubclass(cls, Exception) and cls.__module__ == "repro.errors":
                assert issubclass(cls, errors.HorseError) or cls is errors.HorseError
