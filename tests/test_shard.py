"""The sharded parallel runtime: partitioning, sync, crash-restart.

Fast end-to-end coverage of :mod:`repro.shard`: the greedy and
explicit partitioners, the lookahead/quantum derivation, k>1 runs
matching unsharded results on disjoint and connected topologies, and
the coordinator's replay-based crash recovery.
"""

import json
import os
import tempfile

import pytest

from repro.errors import ExperimentError
from repro.net.generators import linear, pods, single_switch
from repro.runtime.scenario import reset_id_counters, run_scenario
from repro.shard import (
    MIN_QUANTUM_S,
    derive_quantum,
    partition_topology,
    quantum_boundaries,
    run_sharded,
)
from repro.shard.runner import FAULT_ENV, FAULT_MARKER_ENV


def scenario_doc(**overrides) -> dict:
    doc = {
        "schema_version": 1,
        "engine": "flow",
        "until": 2.0,
        "seed": 9,
        "topology": {
            "kind": "pods",
            "pods": 2,
            "hosts_per_pod": 3,
            "capacity": "100 Mbps",
        },
        "policies": {
            "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
        },
        "traffic": {
            "kind": "matrix",
            "model": "pod-local",
            "total": "100 Mbps",
            "horizon_s": 1.0,
        },
        "shards": 2,
    }
    doc.update(overrides)
    return doc


def run_pair(doc):
    """(unsharded result, sharded result) for the same document."""
    unsharded = json.loads(json.dumps(doc))
    unsharded["shards"] = 1
    reset_id_counters()
    _horse, base, base_count = run_scenario(unsharded)
    reset_id_counters()
    _none, sharded, sharded_count = run_scenario(doc)
    assert base_count == sharded_count
    return base, sharded


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_greedy_partition_balances_and_covers():
    topo = pods(4, hosts_per_pod=2)
    plan = partition_topology(topo, 2)
    assert plan.count == 2
    assert set(plan.assignment) == {n.name for n in topo.nodes}
    sizes = plan.summary()["sizes"]
    assert sorted(sizes) == sorted(sizes) and sum(sizes) == len(list(topo.nodes))
    # Disjoint pods: a clean split has no cut at all.
    assert plan.cut_links == []
    assert plan.lookahead_s is None


def test_greedy_partition_keeps_pods_whole():
    topo = pods(2, hosts_per_pod=3)
    plan = partition_topology(topo, 2)
    for pod in ("p0", "p1"):
        shards = {
            plan.shard_of(name)
            for name in plan.assignment
            if name.startswith(pod)
        }
        assert len(shards) == 1, f"pod {pod} split across shards"


def test_connected_topology_has_cut_and_lookahead():
    topo = linear(4, hosts_per_switch=1)
    plan = partition_topology(topo, 2)
    assert plan.cut_links
    assert plan.lookahead_s is not None and plan.lookahead_s > 0
    # Hosts follow their attachment switch.
    for name, shard in plan.assignment.items():
        if name.startswith("h"):
            switch = "s" + name[1:]
            assert shard == plan.shard_of(switch)


def test_explicit_partition_respected_and_validated():
    topo = linear(2, hosts_per_switch=1)
    plan = partition_topology(topo, 2, [["s1"], ["s2"]])
    assert plan.shard_of("s1") == 0 and plan.shard_of("s2") == 1
    with pytest.raises(ExperimentError, match="groups"):
        partition_topology(topo, 2, [["s1", "s2"]])
    with pytest.raises(ExperimentError, match="unknown"):
        partition_topology(topo, 2, [["s1"], ["s99"]])
    with pytest.raises(ExperimentError, match="more than one"):
        partition_topology(topo, 2, [["s1", "s2"], ["s2"]])


def test_partition_rejects_empty_switchless_topology():
    topo = single_switch(2)
    plan = partition_topology(topo, 1)
    assert plan.count == 1


# ----------------------------------------------------------------------
# Quantum derivation
# ----------------------------------------------------------------------
def test_derive_quantum_floors_lookahead():
    topo = linear(4, hosts_per_switch=1)
    plan = partition_topology(topo, 2)
    assert plan.lookahead_s < MIN_QUANTUM_S
    assert derive_quantum(plan, None) == MIN_QUANTUM_S
    assert derive_quantum(plan, 0.5) == 0.5


def test_quantum_boundaries_end_exactly_at_until():
    assert quantum_boundaries(1.0, None) == [1.0]
    assert quantum_boundaries(1.0, 2.0) == [1.0]
    bounds = quantum_boundaries(1.0, 0.3)
    assert bounds[-1] == 1.0
    assert bounds == sorted(bounds)
    assert all(b > 0 for b in bounds)
    # Exact divisor: no duplicated final boundary.
    assert quantum_boundaries(1.0, 0.25) == [0.25, 0.5, 0.75, 1.0]


# ----------------------------------------------------------------------
# End-to-end parity
# ----------------------------------------------------------------------
def test_disjoint_pods_sharded_matches_unsharded_exactly():
    base, sharded = run_pair(scenario_doc())
    assert sharded.engine_stats["engine"] == "sharded"
    assert sharded.engine_stats["shards"] == 2
    reference = {f.flow_id: f for f in base.flows}
    assert len(reference) == len(sharded.flows)
    for flow in sharded.flows:
        ref = reference[flow.flow_id]
        assert (flow.src, flow.dst) == (ref.src, ref.dst)
        assert flow.bytes_delivered == pytest.approx(ref.bytes_delivered)
        assert flow.state == ref.state


def test_connected_topology_sharded_close_to_unsharded():
    doc = scenario_doc(
        topology={"kind": "linear", "switches": 4, "hosts_per_switch": 2},
        traffic={
            "kind": "matrix",
            "model": "uniform",
            "total": "50 Mbps",
            "horizon_s": 1.0,
        },
        shards={"count": 2, "quantum_s": 0.5},
    )
    base, sharded = run_pair(doc)
    assert sharded.engine_stats["rounds"] >= 1
    total_base = sum(f.bytes_delivered for f in base.flows)
    total_sharded = sum(f.bytes_delivered for f in sharded.flows)
    assert total_sharded == pytest.approx(total_base, rel=0.05)


def test_sharded_dispatch_only_above_one():
    reset_id_counters()
    horse, _result, _count = run_scenario(scenario_doc(shards=1))
    assert horse is not None  # unsharded path keeps the in-process horse


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_sharded_requires_finite_until():
    doc = scenario_doc()
    del doc["until"]
    with pytest.raises(ExperimentError, match="until"):
        run_sharded(doc)


def test_sharded_rejects_more_shards_than_switches():
    doc = scenario_doc(shards=5)  # 2 pods -> 2 switches
    with pytest.raises(ExperimentError, match="shards|switch"):
        run_sharded(doc)


def test_sharded_rejects_packet_engine():
    doc = scenario_doc(engine="packet")
    with pytest.raises(ExperimentError, match="flow"):
        run_sharded(doc)


# ----------------------------------------------------------------------
# Crash-restart
# ----------------------------------------------------------------------
def test_crashed_shard_replays_to_identical_result():
    doc = scenario_doc(
        topology={"kind": "linear", "switches": 4, "hosts_per_switch": 2},
        traffic={
            "kind": "matrix",
            "model": "uniform",
            "total": "50 Mbps",
            "horizon_s": 1.0,
        },
        shards={"count": 2, "quantum_s": 0.5},
    )
    reset_id_counters()
    clean, _count = run_sharded(json.loads(json.dumps(doc)))
    assert clean.engine_stats["restarts"] == 0

    marker = tempfile.mktemp(prefix="repro-shard-test-")
    os.environ[FAULT_ENV] = "1:1"
    os.environ[FAULT_MARKER_ENV] = marker
    try:
        reset_id_counters()
        crashed, _count = run_sharded(json.loads(json.dumps(doc)))
    finally:
        os.environ.pop(FAULT_ENV, None)
        os.environ.pop(FAULT_MARKER_ENV, None)
        if os.path.exists(marker):
            os.remove(marker)
    assert crashed.engine_stats["restarts"] == 1
    reference = {f.flow_id: f.bytes_delivered for f in clean.flows}
    for flow in crashed.flows:
        assert flow.bytes_delivered == pytest.approx(reference[flow.flow_id])


def test_checkpoint_dir_enables_fast_forward(tmp_path):
    doc = scenario_doc(
        topology={"kind": "linear", "switches": 4, "hosts_per_switch": 2},
        traffic={
            "kind": "matrix",
            "model": "uniform",
            "total": "50 Mbps",
            "horizon_s": 1.0,
        },
        shards={
            "count": 2,
            "quantum_s": 0.5,
            "checkpoint_dir": str(tmp_path),
        },
    )
    marker = tempfile.mktemp(prefix="repro-shard-test-")
    os.environ[FAULT_ENV] = "0:1"
    os.environ[FAULT_MARKER_ENV] = marker
    try:
        reset_id_counters()
        crashed, _count = run_sharded(json.loads(json.dumps(doc)))
    finally:
        os.environ.pop(FAULT_ENV, None)
        os.environ.pop(FAULT_MARKER_ENV, None)
        if os.path.exists(marker):
            os.remove(marker)
    assert crashed.engine_stats["restarts"] == 1
    assert (tmp_path / "shard-0.ckpt").exists()
    assert (tmp_path / "shard-0.ckpt.round").exists()
