#!/usr/bin/env python3
"""An SDN IXP fabric with a route server and selective peering.

This is the poster's motivating scenario: a peering fabric of member
ASes whose traffic is shaped by route-server export policies.  We build
a 32-member IXP, have one member stop exporting routes to another
(selective peering), replay a gravity traffic matrix, and show that the
fabric statistics reflect the policy.

Run:  python examples/ixp_peering_fabric.py
"""

from repro import Horse, HorseConfig
from repro.ixp import ExportPolicy, build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer


def main() -> None:
    # 1. Build the fabric: 32 members on an edge/core peering LAN.
    fabric = build_ixp(32, seed=11)
    print("fabric:", fabric.summary())

    # 2. Route-server policy: the biggest member (a content network,
    #    say) stops exporting routes to member #5 — traffic from #5 to
    #    it must vanish from the matrix.
    big = fabric.members[0]
    shunned = fabric.members[5]
    fabric.route_server.set_export_policy(
        big.asn, ExportPolicy("block", {shunned.asn})
    )
    print(
        f"AS{big.asn} no longer exports routes to AS{shunned.asn} "
        "(selective peering via the route server)"
    )

    # 3. Synthesize one hour-equivalent of peak traffic honouring the
    #    peering matrix.
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=20e9,
        flow_config=FlowGenConfig(mean_flow_bytes=2e6, min_demand_bps=20e6),
    )
    rng = RngRegistry(11).stream("example")
    flows = synth.steady_flows(rng, duration_s=3.0, load_fraction=0.5)
    print(f"replaying {len(flows)} flows over the fabric")

    # 4. Forward with ECMP across the core; sample link utilization.
    horse = Horse(
        fabric.topology,
        policies={"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}},
        config=HorseConfig(link_sample_interval_s=0.5),
    )
    horse.submit_flows(flows)
    result = horse.run(until=60.0)

    # 5. Report.
    print(
        f"simulated {result.sim_time_s:.0f}s in {result.wall_time_s:.2f}s wall; "
        f"{result.row()['completed']} flows completed, "
        f"aggregate goodput {result.goodput_bps() / 1e9:.2f} Gb/s"
    )
    blocked_pair = [
        f for f in flows if f.src == shunned.host_name and f.dst == big.host_name
    ]
    print(
        f"flows from AS{shunned.asn} to AS{big.asn}: {len(blocked_pair)} "
        "(peering matrix removed the pair)"
    )
    assert not blocked_pair
    hottest = max(result.link_max_utilization.items(), key=lambda kv: kv[1])
    print(f"hottest egress: {hottest[0]} at {hottest[1]:.0%} utilization")


if __name__ == "__main__":
    main()
