#!/usr/bin/env python3
"""The headline claim: simulate a *large* IXP fabric in seconds.

Builds a 256-member peering fabric (the size class of a major European
IXP's member list), synthesizes gravity traffic with realistic skew, and
replays a compressed diurnal half-day at flow level — the workload that
motivates the poster's "large scale networks" title.  A packet-level
simulator pays per packet; at this fabric's offered load that is ~10^8
packet events per simulated minute, which is why the poster argues for
the flow abstraction.

Run:  python examples/large_scale.py
"""

import time

from repro import Horse, HorseConfig
from repro.ixp import build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer


def main() -> None:
    t0 = time.perf_counter()
    fabric = build_ixp(256, seed=2026)
    build_wall = time.perf_counter() - t0
    summary = fabric.summary()
    print(
        f"fabric: {summary['members']} members, {summary['edges']} edge + "
        f"{summary['cores']} core switches, {summary['links']} links, "
        f"{summary['total_capacity_bps'] / 1e12:.2f} Tb/s total capacity "
        f"(built in {build_wall:.2f}s)"
    )

    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=100e9,
        flow_config=FlowGenConfig(mean_flow_bytes=4e6, min_demand_bps=20e6),
    )
    rng = RngRegistry(2026).stream("large")
    t0 = time.perf_counter()
    flows = synth.trace(rng, epochs=6, epoch_duration_s=2.0)
    gen_wall = time.perf_counter() - t0
    volume = sum(f.size_bytes or 0 for f in flows)
    print(
        f"trace: {len(flows)} flows / {volume / 1e9:.1f} GB over a "
        f"6-epoch diurnal ramp (generated in {gen_wall:.2f}s)"
    )

    horse = Horse(
        fabric.topology,
        policies={"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}},
    )
    horse.submit_flows(flows)
    result = horse.run(until=60.0)

    print(
        f"\nsimulated {result.sim_time_s:.0f}s of fabric time in "
        f"{result.wall_time_s:.1f}s of wall time "
        f"({result.events} events, {result.events_per_second:.0f}/s)"
    )
    print(
        f"completed {result.row()['completed']}/{len(flows)} flows, "
        f"aggregate goodput {result.goodput_bps() / 1e9:.2f} Gb/s, "
        f"{result.rule_count} rules installed"
    )
    mean_pkt = 1000  # the engine's packet-counter conversion factor
    packet_events = volume / mean_pkt * 4  # ~4 events per packet-hop
    print(
        f"a packet-level run of the same trace would process on the order "
        f"of {packet_events / 1e6:.0f}M events "
        f"(x{packet_events / max(result.events, 1):,.0f} this run's count)"
    )
    assert result.delivered_fraction > 0.99


if __name__ == "__main__":
    main()
