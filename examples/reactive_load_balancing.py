#!/usr/bin/env python3
"""Reactive load balancing and failure recovery on a multipath fabric.

Shows the full control loop of the poster's architecture: the monitor
polls OpenFlow counters, the reactive balancer re-weights WCMP groups
away from hot links, and when a spine link fails the controller
recomputes and traffic converges onto the survivors.

Run:  python examples/reactive_load_balancing.py
"""

from repro import Horse, HorseConfig
from repro.net.generators import leaf_spine
from repro.openflow.headers import tcp_flow
from repro import Flow


def main() -> None:
    # Two spines, so every leaf has two equal-cost ways up.
    topo = leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=2,
                      leaf_bps=1e9, spine_bps=1e9)
    horse = Horse(
        topo,
        policies={
            "load_balancing": {
                "mode": "reactive",
                "match_on": "ip_dst",
                "threshold": 0.5,
            }
        },
        config=HorseConfig(
            telemetry={
                "monitor_interval_s": 0.5,
                "link_sample_interval_s": 0.5,
            }
        ),
    )

    # Cross-leaf elephants: enough to heat the spine uplinks.
    flows = []
    pairs = [("h1", "h3"), ("h2", "h4"), ("h1", "h5"), ("h2", "h6"),
             ("h3", "h5"), ("h4", "h6"), ("h5", "h1"), ("h6", "h2")]
    for i, (src, dst) in enumerate(pairs):
        s, d = topo.host(src), topo.host(dst)
        flows.append(
            Flow(
                headers=tcp_flow(s.ip, d.ip, 40000 + i, 80),
                src=src, dst=dst, demand_bps=600e6, duration_s=10.0,
            )
        )
    horse.submit_flows(flows)

    # Fail one spine's link to leaf1 at t=4; restore at t=7.
    horse.fail_link(4.0, "leaf1", "spine1")
    horse.restore_link(7.0, "leaf1", "spine1")

    result = horse.run(until=12.0)

    app = horse.controller.app("reactive-lb")
    print(f"{len(flows)} elephants over {result.sim_time_s:.0f}s; "
          f"{result.events} events in {result.wall_time_s:.2f}s wall")
    print(f"WCMP rebalances performed by the controller: {app.rebalances}")
    reroutes = sum(f.reroutes for f in flows)
    print(f"flow reroutes (failure + recovery + rebalancing): {reroutes}")
    assert all(f.delivered for f in flows), "every flow survived the failure"
    print("all flows kept flowing through the spine failure ✓")

    print("\nper-uplink peak utilization:")
    for key, value in sorted(result.link_max_utilization.items()):
        node, port = key
        if node.startswith("leaf"):
            print(f"  {node}:{port}  {value:6.1%}")


if __name__ == "__main__":
    main()
