#!/usr/bin/env python3
"""Policy composition and validation — the poster's Figure 2 end to end.

Takes the JSON-ish policy configuration shown in the poster's
architecture figure, compiles it with the policy generator (table
staging + priority bands), shows the validator catching a bad
composition, and runs the compiled fabric to verify every policy's
behavioural effect simultaneously.

Run:  python examples/policy_composition.py
"""

from repro import Flow, Horse
from repro.control.policy import compile_policies, validate_or_raise, parse_policy_config
from repro.errors import PolicyConflictError
from repro.net.generators import full_mesh
from repro.openflow.headers import tcp_flow


def main() -> None:
    # An edge fabric of 4 meshed switches, two hosts each.
    topo = full_mesh(4, hosts_per_switch=2, capacity_bps=1e9)

    # The poster's policy configuration, as data.
    config = {
        "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"},
        "application_peering": [
            {"src": "h1", "dst": "h5", "app": "http"}  # e1->e3 : http
        ],
        "rate_limiting": [
            {"src": "h3", "dst": "h7", "rate": "100 Mbps"}  # e2->e4
        ],
        "blackholing": [{"target": "h8"}],
    }

    compiled = compile_policies(topo, config)
    print("compiled apps:", [a.name for a in compiled.controller.apps])
    print("pipeline stages:", [
        (s.table_id, list(s.kinds)) for s in compiled.plan.stages
    ])
    for note in compiled.notes:
        print("note:", note)

    # The validator rejects contradictory compositions outright.
    try:
        validate_or_raise(
            parse_policy_config(
                {"forwarding": "learning", "load_balancing": {"mode": "ecmp"}}
            ),
            topo,
        )
    except PolicyConflictError as exc:
        print(f"validator rejected a bad composition: {exc}")

    # Run traffic that exercises every policy at once.
    horse = Horse(topo, policies=compiled)

    def flow(src, dst, dport, sport, demand=400e6, size=50_000_000):
        s, d = topo.host(src), topo.host(dst)
        return Flow(
            headers=tcp_flow(s.ip, d.ip, sport, dport),
            src=src, dst=dst, demand_bps=demand, size_bytes=size,
        )

    http_peered = flow("h1", "h5", dport=80, sport=50001)
    ssh_plain = flow("h1", "h5", dport=22, sport=50002)
    limited = flow("h3", "h7", dport=443, sport=50003)
    doomed = flow("h2", "h8", dport=80, sport=50004, size=10_000_000)
    horse.submit_flows([http_peered, ssh_plain, limited, doomed])
    result = horse.run(until=60.0)

    print(f"\nran {result.events} events in {result.wall_time_s:.3f}s wall")
    # Application peering steered HTTP over the longer path; SSH direct.
    print(f"http h1->h5 path hops: {len(http_peered.route.directions)} "
          f"(detoured); ssh hops: {len(ssh_plain.route.directions)} (direct)")
    assert len(http_peered.route.directions) > len(ssh_plain.route.directions)
    # The meter capped the limited pair at 100 Mb/s.
    rate = limited.bytes_delivered * 8 / limited.flow_completion_time / 1e6
    print(f"rate-limited pair achieved {rate:.1f} Mb/s (cap 100)")
    assert rate <= 101.0
    # The blackholed host received nothing.
    print(f"blackholed flow delivered {doomed.bytes_delivered:.0f} bytes, "
          f"terminal={doomed.route.terminal.value}")
    assert doomed.bytes_delivered == 0
    print("all four policies composed without interference ✓")


if __name__ == "__main__":
    main()
