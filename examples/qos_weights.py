#!/usr/bin/env python3
"""QoS classes via weighted max-min fairness + an edge firewall.

A small fabric carries a mix of streaming (RTMP), web (HTTPS), and bulk
(HTTP) traffic.  Streaming gets a 4x fairness weight, so under
congestion it holds 4x the per-flow rate of bulk; an edge ACL drops SSH
outright.  Demonstrates Flow.weight, FlowGenConfig.app_weights, and
FirewallApp composing with shortest-path forwarding.

Run:  python examples/qos_weights.py
"""

from collections import defaultdict

from repro import Flow, Horse
from repro.control.apps import FirewallApp, ShortestPathApp, deny
from repro.net.generators import linear
from repro.openflow import Match
from repro.openflow.headers import AppPort, IpProto, tcp_flow


def main() -> None:
    # One 100 Mb/s bottleneck between two edges.
    topo = linear(2, hosts_per_switch=2, capacity_bps=100e6)

    firewall = FirewallApp(rules=[deny(Match(tp_dst=AppPort.SSH))])
    firewall.table_id = 0
    firewall.next_table = 1
    forwarding = ShortestPathApp(match_on="ip_dst")
    forwarding.table_id = 1

    from repro import HorseConfig
    from repro.control import Controller

    controller = Controller()
    controller.add_app(firewall)
    controller.add_app(forwarding)
    # Custom controllers size the pipeline themselves: the firewall
    # occupies table 0 and forwards from table 1.
    horse = Horse(topo, controller=controller,
                  config=HorseConfig(pipeline_tables=2))

    # Three flows per class, all crossing the bottleneck, demands far
    # above fair share so weights decide everything.
    weights = {AppPort.RTMP: 4.0, AppPort.HTTPS: 2.0, AppPort.HTTP: 1.0}
    class_names = {AppPort.RTMP: "stream", AppPort.HTTPS: "web",
                   AppPort.HTTP: "bulk"}
    flows = []
    h1, h3 = topo.host("h1"), topo.host("h3")
    sport = 40000
    for port, weight in weights.items():
        for _ in range(3):
            sport += 1
            flows.append(
                Flow(
                    headers=tcp_flow(h1.ip, h3.ip, sport, port),
                    src="h1", dst="h3", demand_bps=200e6,
                    duration_s=5.0, weight=weight,
                )
            )
    blocked = Flow(
        headers=tcp_flow(h1.ip, h3.ip, 50000, AppPort.SSH),
        src="h1", dst="h3", demand_bps=10e6, duration_s=5.0,
    )
    horse.submit_flows(flows + [blocked])
    horse.run(until=2.0)
    horse.sync_statistics()

    per_class = defaultdict(list)
    for flow in flows:
        per_class[class_names[flow.headers.tp_dst]].append(flow.rate_bps)
    print("per-flow rate by QoS class on the 100 Mb/s bottleneck:")
    for name in ("stream", "web", "bulk"):
        rates = per_class[name]
        print(f"  {name:7s} (x{ {'stream':4,'web':2,'bulk':1}[name] }): "
              f"{rates[0] / 1e6:6.2f} Mb/s per flow x{len(rates)}")
    stream = per_class["stream"][0]
    bulk = per_class["bulk"][0]
    assert abs(stream / bulk - 4.0) < 0.01
    print(f"stream:bulk ratio = {stream / bulk:.2f} (configured 4.0) ✓")
    assert blocked.bytes_delivered == 0 and not blocked.delivered
    print("SSH flow dropped by the edge ACL ✓")


if __name__ == "__main__":
    main()
