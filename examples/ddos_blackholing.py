#!/usr/bin/env python3
"""DDoS blackholing: drop attack traffic at the fabric edge, mid-run.

A member comes under a UDP flood.  Partway through the attack the
operator installs a blackhole for the victim, then lifts it once the
attack subsides — the classic mitigation the poster lists among IXP
policies.  The timeline of the victim's ingress rate shows the policy
taking and releasing effect while legitimate traffic keeps flowing.

Run:  python examples/ddos_blackholing.py
"""

from repro import Flow, Horse, HorseConfig
from repro.control.apps import BlackholeApp, ShortestPathApp
from repro.control import Controller
from repro.net.generators import leaf_spine
from repro.openflow.headers import tcp_flow, udp_flow


def main() -> None:
    # A small leaf-spine edge fabric; the victim is h1.
    topo = leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=2,
                      leaf_bps=1e9)
    victim = topo.host("h1")

    # Bring our own controller so we can poke the blackhole app at runtime.
    controller = Controller()
    blackhole = BlackholeApp()
    controller.add_app(blackhole)
    controller.add_app(ShortestPathApp(match_on="ip_dst"))
    horse = Horse(topo, controller=controller,
                  config=HorseConfig(link_sample_interval_s=0.25))

    # Legitimate traffic to the victim plus background flows.
    legit = Flow(
        headers=tcp_flow(topo.host("h3").ip, victim.ip, 20001, 443),
        src="h3", dst="h1", demand_bps=100e6, duration_s=12.0,
    )
    background = Flow(
        headers=tcp_flow(topo.host("h4").ip, topo.host("h6").ip, 20002, 80),
        src="h4", dst="h6", demand_bps=200e6, duration_s=12.0,
    )
    # The attack: four UDP sources flooding the victim's 1G port.
    attackers = [
        Flow(
            headers=udp_flow(topo.host(name).ip, victim.ip, 30000 + i, 53),
            src=name, dst="h1", demand_bps=400e6, duration_s=8.0,
            start_time=2.0, elastic=False,
        )
        for i, name in enumerate(["h2", "h4", "h5", "h6"])
    ]
    horse.submit_flows([legit, background] + attackers)

    # Mitigation timeline: detect at t=4, lift at t=11.
    horse.sim.call_at(4.0, lambda s: blackhole.add_target(victim.ip))
    horse.sim.call_at(11.0, lambda s: blackhole.remove_target(victim.ip))

    # Track the victim's ingress rate over time.
    samples = []

    def sample(sim, t):
        horse.sync_statistics()  # counters accrue lazily between events
        samples.append((t, victim.uplink_port.rx_bytes))

    horse.sim.every(0.5, sample)

    result = horse.run(until=14.0)

    print("victim ingress rate over time (blackhole from t=4 to t=11):")
    last = 0
    for t, rx in samples:
        rate = (rx - last) * 8 / 0.5 / 1e6
        last = rx
        bar = "#" * int(rate / 25)
        marker = " <- blackholed" if 4.0 < t <= 11.0 else ""
        print(f"  t={t:5.1f}s  {rate:8.1f} Mb/s {bar}{marker}")

    print(f"\nattack bytes dropped: "
          f"{sum(a.bytes_dropped for a in attackers) / 1e6:.1f} MB")
    print(f"background flow delivered "
          f"{background.bytes_delivered / 1e6:.1f} MB unharmed")
    # During the blackhole window nothing reaches the victim.
    window = [r for (t, r) in zip(
        [t for t, _ in samples],
        [  # per-interval deltas
            (b - a) for (_, a), (_, b) in zip(samples, samples[1:])
        ],
    ) if 5.0 <= t <= 10.5]
    assert all(delta == 0 for delta in window), window
    print("victim ingress was exactly zero while blackholed ✓")


if __name__ == "__main__":
    main()
