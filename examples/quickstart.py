#!/usr/bin/env python3
"""Quickstart: simulate two TCP flows sharing a bottleneck link.

Builds the smallest interesting network (h1 - s1 - s2 - h2 at 10 Mb/s),
compiles a shortest-path forwarding policy, runs two competing flows at
flow-level granularity, and prints their dynamics — the whole Horse
pipeline in ~20 lines of API.

Run:  python examples/quickstart.py
"""

from repro import Flow, Horse
from repro.net.generators import linear
from repro.openflow.headers import tcp_flow


def main() -> None:
    # 1. Topology: h1 - s1 - s2 - h2, every link 10 Mb/s.
    topo = linear(2, hosts_per_switch=1, capacity_bps=10e6)
    h1, h2 = topo.host("h1"), topo.host("h2")

    # 2. Policy: proactive shortest-path forwarding on IPv4 destinations.
    horse = Horse(
        topo,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
    )

    # 3. Traffic: a 10 MB transfer, then a 5 MB transfer 1 s later.
    first = Flow(
        headers=tcp_flow(h1.ip, h2.ip, 10001, 80),
        src="h1",
        dst="h2",
        demand_bps=8e6,
        size_bytes=10_000_000,
    )
    second = Flow(
        headers=tcp_flow(h1.ip, h2.ip, 10002, 80),
        src="h1",
        dst="h2",
        demand_bps=8e6,
        size_bytes=5_000_000,
        start_time=1.0,
    )
    horse.submit_flows([first, second])

    # 4. Run and report.
    result = horse.run()
    print(f"simulated {result.sim_time_s:.1f}s in "
          f"{result.wall_time_s * 1000:.1f}ms of wall time "
          f"({result.events} events)")
    for flow in (first, second):
        fct = flow.flow_completion_time
        rate = flow.bytes_delivered * 8 / fct / 1e6
        print(
            f"  flow {flow.flow_id}: {flow.size_bytes / 1e6:.0f} MB "
            f"done at t={flow.end_time:.2f}s "
            f"(FCT {fct:.2f}s, avg {rate:.2f} Mb/s)"
        )
    # While both flows ran they split the 10 Mb/s bottleneck 5/5; alone,
    # each is capped by its own 8 Mb/s demand.
    assert abs(first.end_time - 13.0) < 1e-6
    assert abs(second.end_time - 9.0) < 1e-6
    print("max-min sharing matched the hand-computed schedule ✓")


if __name__ == "__main__":
    main()
