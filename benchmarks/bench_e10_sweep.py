"""E10: the sweep runtime's own wall-clock scaling with pool width.

Four identical pod-workload jobs (the incremental solver's target
regime, see :func:`harness.pod_workload`) run through the
crash-isolated worker pool at 1, 2, and 4 workers.  Expected shape:
the jobs are independent CPU-bound simulations, so wall-clock shrinks
as workers are added — imperfectly, because of fork + result-file
overhead — and the per-job results are identical at every pool width.
Absolute times are calibration-normalized and recorded, not asserted.
"""

import json
import os
import time

import pytest

from repro.runtime import run_jobs

from .harness import (
    calibration_score,
    pod_workload,
    record,
    rows,
    timed_solver_run,
    write_table,
)

JOBS = 4

#: Downsized pod workload: ~1.3 s serial per job on the reference host.
POD_KW = {"pods": 20, "hosts_per_pod": 8, "flows_per_pod": 150}
UNTIL = 2.0


def _sweep_job(payload: dict) -> dict:
    """Pool worker: run one pod-workload job, return its fingerprint."""
    topo, flows = pod_workload(seed=payload["seed"], **payload["pods"])
    wall, rates = timed_solver_run(topo, flows, "incremental", payload["until"])
    return {
        "index": payload["index"],
        "job_wall_s": round(wall, 4),
        "rate_checksum_mbps": round(sum(rates) / 1e6, 3),
    }


@pytest.mark.parametrize("workers", [1, 2, 4])
def bench_e10_sweep(benchmark, tmp_path, workers):
    payloads = [
        {"index": i, "seed": 100 + i, "pods": POD_KW, "until": UNTIL}
        for i in range(JOBS)
    ]
    out_paths = [str(tmp_path / f"job-{i}.json") for i in range(JOBS)]

    def run():
        start = time.perf_counter()
        outcomes = run_jobs(
            payloads, _sweep_job, out_paths, workers=workers, retries=0
        )
        elapsed = time.perf_counter() - start
        assert all(o.ok for o in outcomes)
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    results = []
    for path in out_paths:
        with open(path) as handle:
            results.append(json.load(handle))
    record(
        "E10",
        {
            "workers": workers,
            "jobs": JOBS,
            "wall_s": round(elapsed, 3),
            "normalized": round(elapsed / calibration_score(), 3),
            "sum_job_wall_s": round(sum(r["job_wall_s"] for r in results), 3),
            "checksum": tuple(r["rate_checksum_mbps"] for r in results),
        },
    )


def bench_e10_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_workers = {r["workers"]: r["wall_s"] for r in rows("E10")}
    # Deterministic results regardless of pool width: every row saw the
    # same per-job rate vectors.
    assert len({r["checksum"] for r in rows("E10")}) == 1
    # Shape: adding workers helps, to the extent the host has cores.
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert by_workers[2] < by_workers[1] * 0.85
    if cores >= 4:
        assert by_workers[4] < by_workers[1] * 0.75
    write_table("E10", "sweep wall-clock vs pool width (4 pod-workload jobs)")
