"""E9 (extension): failure recovery — controller repair vs fast failover.

A controller that recomputes paths on port-status (ShortestPathApp)
loses traffic for one control round trip per failure; pre-installed
FAST_FAILOVER groups (PathProtectionApp) switch in the data plane with
zero control involvement.  We script two failures on a triangle mesh
with a 50 ms control channel and compare delivered bytes against the
no-failure ideal.

Expected shape: protection delivers ~the ideal volume; controller
repair loses ≈ rate x latency per failure event.
"""

import pytest

from repro import Flow, HorseConfig
from repro.control import ControlChannel, Controller
from repro.control.apps import PathProtectionApp, ShortestPathApp
from repro.flowsim import FlowLevelEngine
from repro.net.generators import full_mesh
from repro.openflow import attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import Simulator

from .harness import record, rows, write_table

LATENCY_S = 0.05
RATE_BPS = 100e6
DURATION_S = 12.0
FAILURES = [(2.0, 4.0), (6.0, 8.0)]  # (fail, restore) on s1-s2


def _run(mode: str):
    topo = full_mesh(3, hosts_per_switch=1)
    for switch in topo.switches:
        attach_pipeline(switch)
    sim = Simulator()
    controller = Controller()
    if mode == "controller-repair":
        controller.add_app(ShortestPathApp(match_on="ip_dst"))
    else:
        controller.add_app(PathProtectionApp(match_on="ip_dst"))
    channel = ControlChannel(
        sim, topo, controller=controller, latency_s=LATENCY_S
    )
    engine = FlowLevelEngine(sim, topo, control=channel)
    channel.connect_engine(engine)
    # Proactive installs also pay the latency; run them in before t=0
    # traffic by letting the mods land first.
    controller.start()
    sim.run(until=1.0)

    h1, h2 = topo.host("h1"), topo.host("h2")
    flow = Flow(
        headers=tcp_flow(h1.ip, h2.ip, 1000, 80),
        src="h1",
        dst="h2",
        demand_bps=RATE_BPS,
        duration_s=DURATION_S,
        start_time=1.0,
    )
    engine.submit(flow)
    for fail_at, restore_at in FAILURES:
        engine.fail_link_at(1.0 + fail_at, "s1", "s2")
        engine.restore_link_at(1.0 + restore_at, "s1", "s2")
    sim.run(until=30.0)
    engine.finish()

    ideal = RATE_BPS * DURATION_S / 8.0
    deficit = ideal - flow.bytes_delivered
    record(
        "E9",
        {
            "mode": mode,
            "failures": len(FAILURES),
            "latency_ms": LATENCY_S * 1000,
            "delivered_MB": round(flow.bytes_delivered / 1e6, 3),
            "ideal_MB": round(ideal / 1e6, 3),
            "deficit_KB": round(deficit / 1e3, 1),
            "reroutes": flow.reroutes,
        },
    )
    return flow, deficit


@pytest.mark.parametrize("mode", ["controller-repair", "fast-failover"])
def bench_e9_recovery(benchmark, mode):
    flow, deficit = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    assert flow.delivered
    assert flow.reroutes >= 2 * len(FAILURES)


def bench_e9_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_mode = {r["mode"]: r for r in rows("E9")}
    repair = by_mode["controller-repair"]
    failover = by_mode["fast-failover"]
    # Data-plane failover loses (essentially) nothing.
    assert failover["deficit_KB"] < 5.0, failover
    # Controller repair loses about rate x latency per failure:
    # 100 Mb/s x 50 ms x 2 = 1.25 MB (1250 KB); allow slack for the
    # coalesced sweep landing within the same control epoch.
    expected_kb = RATE_BPS * LATENCY_S * len(FAILURES) / 8.0 / 1e3
    assert repair["deficit_KB"] > 0.5 * expected_kb, (
        repair,
        expected_kb,
    )
    write_table("E9", "failure recovery: controller repair vs fast failover")
