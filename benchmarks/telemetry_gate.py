"""Telemetry overhead gate: disabled instrumentation must stay free.

Every hot-path emission site added by the telemetry subsystem is guarded
by a single ``is not None`` attribute read (kernel dispatch, solver
resolve, engine route/recompute/notify, channel handlers).  This gate
enforces that the guards are actually free: the smoke hot-path workload
with telemetry *disabled* (the default) must run within
``OVERHEAD_LIMIT`` of the committed pre-telemetry baseline in
``BENCH_e2.json`` (``smoke_hotpath_incremental``), calibration-
normalized so the bound transfers across machines.

Usage::

    python -m benchmarks.telemetry_gate
"""

from __future__ import annotations

import sys
import time

from .harness import (
    calibration_score,
    load_baseline,
    pod_workload,
    timed_solver_run,
)

#: The acceptance bound: <5% normalized slowdown with telemetry disabled.
OVERHEAD_LIMIT = 1.05
ROUNDS = 8
CONFIRM_PASSES = 2
BASELINE_CASE = "smoke_hotpath_incremental"


def measure() -> tuple[float, float]:
    """Best-of-N *normalized* time of the smoke hot-path workload
    (telemetry off — engines are constructed with their trace/profiler
    slots None, exactly what every default run pays).

    Each round pairs the workload with a calibration sample taken
    immediately before it, so transient host load inflates numerator
    and denominator together and the per-round normalized time stays
    stable; the minimum across rounds then discards rounds a load
    spike hit anyway.  A real structural regression (guard cost on the
    hot path) survives the minimum because it is present in every
    round.  Returns ``(best_normalized, score_of_best_round)``.
    """
    best = float("inf")
    best_score = 1.0
    for _ in range(ROUNDS):
        score = calibration_score()
        topo, flows = pod_workload(pods=8, hosts_per_pod=8, flows_per_pod=60)
        wall, rates = timed_solver_run(topo, flows, "incremental", until=1.5)
        assert sum(1 for r in rates if r > 0) == len(flows)
        if wall / score < best:
            best, best_score = wall / score, score
    return best, best_score


def main(argv=None) -> int:
    baseline = load_baseline()
    if baseline is None:
        print("no BENCH_e2.json baseline; run `python -m benchmarks.smoke "
              "--update` first", file=sys.stderr)
        return 2
    entry = baseline.get("entries", {}).get(BASELINE_CASE)
    if entry is None:
        print(f"baseline has no {BASELINE_CASE!r} entry", file=sys.stderr)
        return 2

    start = time.perf_counter()
    normalized, score = measure()
    print(f"calibration score: {score:.3f} (1.0 = reference machine)")
    print(f"hotpath best-of-{ROUNDS}: normalized {normalized:.3f} "
          f"(measured in {time.perf_counter() - start:.1f}s)")

    ratio = normalized / entry["normalized"]
    for _ in range(CONFIRM_PASSES):
        if ratio <= OVERHEAD_LIMIT:
            break
        # A structural regression reproduces; a load spike does not.
        # Confirm over additional full passes before failing the gate.
        print(f"over limit ({ratio:.3f}x); re-measuring to confirm")
        normalized = min(normalized, measure()[0])
        ratio = normalized / entry["normalized"]
    verdict = "ok" if ratio <= OVERHEAD_LIMIT else "REGRESSION"
    print(f"telemetry-disabled overhead: {ratio:.3f}x baseline ({verdict})")
    if ratio > OVERHEAD_LIMIT:
        print(
            f"telemetry gate failed: normalized {normalized:.3f} vs "
            f"baseline {entry['normalized']} "
            f"({ratio:.2f}x > {OVERHEAD_LIMIT}x)",
            file=sys.stderr,
        )
        return 1
    print("telemetry gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
