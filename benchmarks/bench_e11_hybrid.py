"""E11: hybrid co-simulation accuracy and speed against pure pktsim.

The hybrid engine's pitch is packet-level fidelity for the flows that
matter at flow-level cost for the rest.  This experiment quantifies
both halves on the capped E3 star-crossload scenario: the top-2
highest-demand (elastic) flows run as packets inside CBR cross-traffic
that stays fluid, and the gate is

* foreground FCT mean relative error <= 10% of the pure packet-level
  run, and
* >= 2x wall-clock speedup over pure pktsim (best-of-N walls).

Runs both as a pytest benchmark (``make bench``) and as a standalone
CI smoke gate::

    python -m benchmarks.bench_e11_hybrid
"""

from __future__ import annotations

import sys
import time

from repro import Horse, HorseConfig
from repro.flowsim import Flow
from repro.net.generators import single_switch
from repro.openflow.headers import tcp_flow, udp_flow
from repro.runtime.scenario import reset_id_counters
from repro.stats import mean_relative_error

from .harness import record, rows, write_table

HORIZON = 40.0
FCT_ERROR_LIMIT = 0.10
SPEEDUP_LIMIT = 2.0
ROUNDS = 3

#: (src, dst, demand_bps, size_bytes or None, duration_s or None, elastic)
WORKLOAD = [
    # CBR cross-traffic loading h2's and h1's access links (background
    # under top:2 — lower demand than the elastic flows).
    ("h1", "h2", 4e6, None, 8.0, False),
    ("h3", "h2", 3e6, None, 8.0, False),
    ("h4", "h1", 2e6, None, 8.0, False),
    ("h5", "h2", 2e6, None, 8.0, False),
    # The elastic foreground candidates whose FCTs are compared.
    ("h3", "h4", 8e6, 1_000_000, None, True),
    ("h2", "h3", 8e6, 500_000, None, True),
]


def _flows(topo):
    flows = []
    for i, (src, dst, demand, size, duration, elastic) in enumerate(WORKLOAD):
        s, d = topo.host(src), topo.host(dst)
        builder = tcp_flow if elastic else udp_flow
        start = 0.5 if (elastic and size == 500_000) else 0.0
        flows.append(
            Flow(
                headers=builder(s.ip, d.ip, 1000 + i, 80,
                                eth_src=s.mac, eth_dst=d.mac),
                src=src,
                dst=dst,
                demand_bps=demand,
                size_bytes=size,
                duration_s=duration,
                start_time=start,
                elastic=elastic,
            )
        )
    return flows


def _run(engine, **config_kw):
    reset_id_counters()
    topo = single_switch(5, capacity_bps=10e6)
    horse = Horse(
        topo,
        policies={"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
        config=HorseConfig(engine=engine, **config_kw),
    )
    flows = _flows(topo)
    horse.submit_flows(flows)
    start = time.perf_counter()
    result = horse.run(until=HORIZON)
    wall = time.perf_counter() - start
    return flows, result, wall


def _foreground_fcts(flows):
    return {
        f.flow_id: f.flow_completion_time
        for f in flows
        if f.elastic and f.flow_completion_time is not None
    }


def run_e11() -> dict:
    """One full comparison; returns the measured row (also recorded)."""
    pkt_walls, hyb_walls = [], []
    for _ in range(ROUNDS):
        pkt_flows, pkt_result, wall = _run("packet")
        pkt_walls.append(wall)
    for _ in range(ROUNDS):
        hyb_flows, hyb_result, wall = _run("hybrid", hybrid={"select": "top:2"})
        hyb_walls.append(wall)

    fct_pkt = _foreground_fcts(pkt_flows)
    fct_hyb = _foreground_fcts(hyb_flows)
    assert set(fct_pkt) == set(fct_hyb) and len(fct_pkt) == 2, (
        fct_pkt, fct_hyb,
    )
    fct_err = mean_relative_error(fct_hyb, fct_pkt)
    speedup = min(pkt_walls) / min(hyb_walls)
    row = {
        "foreground_flows": len(fct_hyb),
        "fct_err": round(fct_err, 4),
        "pkt_events": pkt_result.events,
        "hybrid_events": hyb_result.events,
        "event_ratio": round(pkt_result.events / hyb_result.events, 2),
        "pkt_wall_s": round(min(pkt_walls), 4),
        "hybrid_wall_s": round(min(hyb_walls), 4),
        "speedup": round(speedup, 2),
    }
    record("E11", row)
    return row


def bench_e11_hybrid_accuracy_and_speed(benchmark):
    row = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    assert row["fct_err"] <= FCT_ERROR_LIMIT, row
    assert row["speedup"] >= SPEEDUP_LIMIT, row


def bench_e11_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_table("E11", "hybrid vs pure pktsim: foreground FCT and wall clock")
    assert rows("E11")


def main() -> int:
    row = run_e11()
    print(f"E11 hybrid gate: fct_err={row['fct_err']} "
          f"(limit {FCT_ERROR_LIMIT}), speedup={row['speedup']}x "
          f"(limit {SPEEDUP_LIMIT}x), "
          f"events {row['pkt_events']} -> {row['hybrid_events']}")
    failures = []
    if row["fct_err"] > FCT_ERROR_LIMIT:
        failures.append(
            f"foreground FCT error {row['fct_err']} > {FCT_ERROR_LIMIT}"
        )
    if row["speedup"] < SPEEDUP_LIMIT:
        failures.append(f"speedup {row['speedup']}x < {SPEEDUP_LIMIT}x")
    if failures:
        for failure in failures:
            print(f"E11 FAILED: {failure}", file=sys.stderr)
        return 1
    print("E11 hybrid gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
