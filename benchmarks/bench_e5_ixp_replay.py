"""E5 ("Figure 5"): replaying IXP behaviour over time.

The poster's plan: model an IXP and "replay its behavior over time".
We drive a compressed diurnal cycle (12 epochs) of gravity traffic
through the fabric twice — once with static ECMP hashing, once with the
reactive load balancer closing the monitor->policy loop — and track the
hottest core link per epoch.

Expected shape: the diurnal wave shows up in fabric goodput; at peak
epochs the reactive balancer keeps the hottest core link at or below the
static hash's level by re-weighting WCMP buckets.
"""

import pytest

from repro import Horse, HorseConfig
from repro.ixp import build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer

from .harness import LOAD_PER_MEMBER_BPS, record, rows, write_table

MEMBERS = 24
EPOCHS = 12
EPOCH_S = 2.0
SEED = 21
HORIZON = EPOCHS * EPOCH_S + 30.0

REPLAY_FLOW_CONFIG = FlowGenConfig(
    mean_flow_bytes=2e6, demand_factor=4.0, min_demand_bps=20e6
)


def _workload():
    # Uniform 1G member ports keep the edge uplinks modest (they are
    # sized from the fastest attached port), so peak epochs actually
    # stress the core and give the reactive balancer something to do.
    from repro.ixp import synthesize_members
    from repro.sim.rng import RngRegistry as _Rng

    members = synthesize_members(MEMBERS, _Rng(SEED).stream("members"))
    for member in members:
        member.port_bps = 1e9
    fabric = build_ixp(
        MEMBERS, members=members, seed=SEED, oversubscription=3.5
    )
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=1.5 * LOAD_PER_MEMBER_BPS * MEMBERS,
        flow_config=REPLAY_FLOW_CONFIG,
    )
    rng = RngRegistry(SEED).stream("e5")
    flows = synth.trace(rng, epochs=EPOCHS, epoch_duration_s=EPOCH_S)
    return fabric, flows


def _core_keys(fabric):
    keys = set()
    for direction in fabric.core_directions():
        keys.add((direction.src_port.node.name, direction.src_port.number))
    return keys


def _run(mode: str):
    fabric, flows = _workload()
    if mode == "static":
        policies = {"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}}
        config = HorseConfig(telemetry={"link_sample_interval_s": 0.5})
    else:
        policies = {
            "load_balancing": {
                "mode": "reactive",
                "match_on": "ip_dst",
                "threshold": 0.45,
            }
        }
        config = HorseConfig(
            telemetry={
                "link_sample_interval_s": 0.5,
                "monitor_interval_s": 0.5,
            }
        )
    horse = Horse(fabric.topology, policies=policies, config=config)
    horse.submit_flows(flows)
    result = horse.run(until=HORIZON)
    core = _core_keys(fabric)
    peak = max(
        (v for k, v in result.link_max_utilization.items() if k in core),
        default=0.0,
    )
    mean_core = max(
        (v for k, v in result.link_mean_utilization.items() if k in core),
        default=0.0,
    )
    rebalances = 0
    if mode == "reactive":
        rebalances = horse.controller.app("reactive-lb").rebalances
    record(
        "E5",
        {
            "mode": mode,
            "flows": len(flows),
            "epochs": EPOCHS,
            "wall_s": round(result.wall_time_s, 3),
            "delivered": round(result.delivered_fraction, 3),
            "goodput_gbps": round(result.goodput_bps() / 1e9, 3),
            "peak_core_util": round(peak, 3),
            "busiest_core_mean_util": round(mean_core, 3),
            "rebalances": rebalances,
        },
    )
    return result, peak


@pytest.mark.parametrize("mode", ["static", "reactive"])
def bench_e5_replay(benchmark, mode):
    result, peak = benchmark.pedantic(_run, args=(mode,), rounds=1, iterations=1)
    assert result.delivered_fraction > 0.99
    assert peak > 0.0


def bench_e5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_mode = {r["mode"]: r for r in rows("E5")}
    static = by_mode["static"]
    reactive = by_mode["reactive"]
    # The monitor->policy loop actually fired.
    assert reactive["rebalances"] > 0
    # Reactive keeps the busiest core link cooler on time-weighted
    # average than static hashing (instantaneous peaks can transiently
    # touch saturation before a rebalance lands, so the sustained level
    # is the meaningful comparison).
    assert (
        reactive["busiest_core_mean_util"]
        <= static["busiest_core_mean_util"] + 0.02
    ), (reactive["busiest_core_mean_util"], static["busiest_core_mean_util"])
    write_table("E5", "diurnal IXP replay: static ECMP vs reactive WCMP")
