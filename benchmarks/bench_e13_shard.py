"""E13: sharded parallel runtime — speedup and accuracy at k=4.

The shard runtime's pitch is intra-run parallelism: partition the
topology, run each domain on its own core, synchronize conservatively
at quantum boundaries.  This experiment measures both halves on a
pod workload (4 disjoint pods, pod-local traffic — the embarrassingly
parallel case the partitioner must recognize):

* **speedup** — k=4 wall clock vs the identical unsharded run must be
  >= 1.8x.  The gate only arms on machines with >= 4 cores (CI runners
  qualify; a 1-core sandbox measures pure overhead and reports only).
* **accuracy** — per-flow delivered bytes must match the unsharded run
  within 5% for every flow (disjoint pods make the exchange exact, so
  in practice the deviation is zero).

Runs both as a pytest benchmark (``make bench``) and as a standalone
CI gate::

    python -m benchmarks.bench_e13_shard
"""

from __future__ import annotations

import copy
import os
import sys
import time

from repro.runtime.scenario import reset_id_counters, run_scenario

from .harness import record, rows, write_table

SPEEDUP_LIMIT = 1.8
RATE_TOLERANCE = 0.05
SHARDS = 4
MIN_CORES_FOR_GATE = 4

SCENARIO = {
    "schema_version": 1,
    "engine": "flow",
    "until": 10.0,
    "seed": 5,
    "topology": {
        "kind": "pods",
        "pods": SHARDS,
        "hosts_per_pod": 12,
        "capacity": "100 Mbps",
    },
    "policies": {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
    "traffic": {
        "kind": "matrix",
        "model": "pod-local",
        "total": "2 Gbps",
        "horizon_s": 8.0,
    },
}


def _run(shards: int):
    scenario = copy.deepcopy(SCENARIO)
    scenario["shards"] = shards
    reset_id_counters()
    start = time.perf_counter()
    _horse, result, count = run_scenario(scenario)
    wall = time.perf_counter() - start
    return result, count, wall


def _worst_flow_deviation(base, sharded) -> float:
    reference = {f.flow_id: f for f in base.flows}
    worst = 0.0
    for flow in sharded.flows:
        ref = reference[flow.flow_id]
        if ref.bytes_delivered <= 0:
            continue
        deviation = (
            abs(flow.bytes_delivered - ref.bytes_delivered) / ref.bytes_delivered
        )
        worst = max(worst, deviation)
    return worst


def run_e13() -> dict:
    base, n1, wall_1 = _run(1)
    sharded, nk, wall_k = _run(SHARDS)
    assert n1 == nk, f"flow counts diverged: {n1} vs {nk}"
    assert len(base.flows) == len(sharded.flows)
    worst = _worst_flow_deviation(base, sharded)
    cores = os.cpu_count() or 1
    row = {
        "flows": n1,
        "shards": SHARDS,
        "rounds": sharded.engine_stats["rounds"],
        "cores": cores,
        "wall_1_s": round(wall_1, 3),
        "wall_k_s": round(wall_k, 3),
        "speedup": round(wall_1 / wall_k, 2),
        "worst_flow_dev": round(worst, 5),
        "gate_armed": cores >= MIN_CORES_FOR_GATE,
    }
    record("E13", row)
    return row


def check_e13(row: dict) -> None:
    assert row["worst_flow_dev"] <= RATE_TOLERANCE, row
    if row["gate_armed"]:
        assert row["speedup"] >= SPEEDUP_LIMIT, row
    else:
        print(
            f"e13: {row['cores']} core(s) < {MIN_CORES_FOR_GATE}; "
            f"speedup gate not armed (measured {row['speedup']}x)"
        )


def bench_e13_shard_speedup(benchmark):
    row = benchmark.pedantic(run_e13, rounds=1, iterations=1)
    check_e13(row)


def bench_e13_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_table("E13", "sharded runtime: k=4 wall clock and per-flow accuracy")
    assert rows("E13")


def main() -> int:
    row = run_e13()
    print(
        f"e13: {row['flows']} flows  unsharded {row['wall_1_s']}s  "
        f"k={SHARDS} {row['wall_k_s']}s  speedup {row['speedup']}x  "
        f"worst flow deviation {row['worst_flow_dev']}"
    )
    check_e13(row)
    print("e13: gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
