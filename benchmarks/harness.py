"""Shared helpers for the experiment benchmarks (E1–E7).

Each benchmark file records rows into a per-experiment table; the file's
final ``bench_*_report`` writes the table to ``benchmarks/results/`` and
asserts the *shape* the paper's evaluation plan predicts (who wins, by
roughly what factor).  Absolute numbers depend on the host machine and
are recorded, not asserted.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, List, Optional

from repro import Horse, HorseConfig, RunResult
from repro.ixp import IxpFabric, build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: exp id -> list of row dicts, accumulated across parametrized benches.
_TABLES: Dict[str, List[dict]] = defaultdict(list)


def record(exp_id: str, row: dict) -> None:
    """Append one result row for an experiment."""
    _TABLES[exp_id].append(dict(row))


def rows(exp_id: str) -> List[dict]:
    return list(_TABLES[exp_id])


def write_table(exp_id: str, title: str) -> str:
    """Render the experiment's rows as an aligned text table, write it to
    benchmarks/results/<exp>.txt, and return the rendering."""
    table_rows = _TABLES[exp_id]
    if not table_rows:
        return f"{exp_id}: no rows recorded"
    headers = list(table_rows[0].keys())
    widths = {
        h: max(len(h), *(len(_fmt(r.get(h, ""))) for r in table_rows))
        for h in headers
    }
    lines = [f"# {exp_id}: {title}", ""]
    lines.append("  ".join(h.ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in table_rows:
        lines.append(
            "  ".join(_fmt(row.get(h, "")).ljust(widths[h]) for h in headers)
        )
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{exp_id}.txt"), "w") as f:
        f.write(text)
    print("\n" + text)
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------

#: Keep per-member offered load constant while scaling the fabric.
LOAD_PER_MEMBER_BPS = 400e6

#: Flow-size knobs sized so runs finish quickly but still produce
#: thousands of flow events at the larger scales.
BENCH_FLOW_CONFIG = FlowGenConfig(
    mean_flow_bytes=2e6, demand_factor=4.0, min_demand_bps=20e6
)


def ixp_workload(
    members: int,
    duration_s: float,
    seed: int = 42,
    load_fraction: float = 1.0,
    flow_config: Optional[FlowGenConfig] = None,
):
    """Build an IXP fabric plus a steady flow workload for it."""
    fabric = build_ixp(members, seed=seed)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=LOAD_PER_MEMBER_BPS * members,
        flow_config=flow_config or BENCH_FLOW_CONFIG,
    )
    rng = RngRegistry(seed).stream("bench-trace")
    flows = synth.steady_flows(rng, duration_s=duration_s,
                               load_fraction=load_fraction)
    return fabric, flows


def run_engine(
    fabric_or_topo,
    flows,
    engine: str,
    policies: Optional[dict] = None,
    until: Optional[float] = None,
    config_overrides: Optional[dict] = None,
) -> RunResult:
    """Run one engine over a prepared workload and return the result."""
    topology = getattr(fabric_or_topo, "topology", fabric_or_topo)
    policies = policies or {
        "forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}
    }
    overrides = dict(config_overrides or {})
    config = HorseConfig(engine=engine, **overrides)
    horse = Horse(topology, policies=policies, config=config)
    horse.submit_flows(flows)
    return horse.run(until=until)
