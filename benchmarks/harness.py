"""Shared helpers for the experiment benchmarks (E1–E7).

Each benchmark file records rows into a per-experiment table; the file's
final ``bench_*_report`` writes the table to ``benchmarks/results/`` and
asserts the *shape* the paper's evaluation plan predicts (who wins, by
roughly what factor).  Absolute numbers depend on the host machine and
are recorded, not asserted.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro import Horse, HorseConfig, RunResult
from repro.flowsim import Flow
from repro.ixp import IxpFabric, build_ixp
from repro.net.topology import Topology
from repro.openflow import ApplyActions, Match, Output, attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim.rng import RngRegistry
from repro.traffic import FlowGenConfig, IxpTraceSynthesizer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Committed benchmark baseline (regression reference for bench-smoke).
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_e2.json")

#: exp id -> list of row dicts, accumulated across parametrized benches.
_TABLES: Dict[str, List[dict]] = defaultdict(list)


def record(exp_id: str, row: dict) -> None:
    """Append one result row for an experiment."""
    _TABLES[exp_id].append(dict(row))


def rows(exp_id: str) -> List[dict]:
    return list(_TABLES[exp_id])


def write_table(exp_id: str, title: str) -> str:
    """Render the experiment's rows as an aligned text table, write it to
    benchmarks/results/<exp>.txt, and return the rendering."""
    table_rows = _TABLES[exp_id]
    if not table_rows:
        return f"{exp_id}: no rows recorded"
    headers = list(table_rows[0].keys())
    widths = {
        h: max(len(h), *(len(_fmt(r.get(h, ""))) for r in table_rows))
        for h in headers
    }
    lines = [f"# {exp_id}: {title}", ""]
    lines.append("  ".join(h.ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in table_rows:
        lines.append(
            "  ".join(_fmt(row.get(h, "")).ljust(widths[h]) for h in headers)
        )
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{exp_id}.txt"), "w") as f:
        f.write(text)
    print("\n" + text)
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------

#: Keep per-member offered load constant while scaling the fabric.
LOAD_PER_MEMBER_BPS = 400e6

#: Flow-size knobs sized so runs finish quickly but still produce
#: thousands of flow events at the larger scales.
BENCH_FLOW_CONFIG = FlowGenConfig(
    mean_flow_bytes=2e6, demand_factor=4.0, min_demand_bps=20e6
)


def ixp_workload(
    members: int,
    duration_s: float,
    seed: int = 42,
    load_fraction: float = 1.0,
    flow_config: Optional[FlowGenConfig] = None,
):
    """Build an IXP fabric plus a steady flow workload for it."""
    fabric = build_ixp(members, seed=seed)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=LOAD_PER_MEMBER_BPS * members,
        flow_config=flow_config or BENCH_FLOW_CONFIG,
    )
    rng = RngRegistry(seed).stream("bench-trace")
    flows = synth.steady_flows(rng, duration_s=duration_s,
                               load_fraction=load_fraction)
    return fabric, flows


def run_engine(
    fabric_or_topo,
    flows,
    engine: str,
    policies: Optional[dict] = None,
    until: Optional[float] = None,
    solver: Optional[str] = None,
    config_overrides: Optional[dict] = None,
) -> RunResult:
    """Run one engine over a prepared workload and return the result."""
    topology = getattr(fabric_or_topo, "topology", fabric_or_topo)
    if policies is None:
        policies = {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}}
    overrides = dict(config_overrides or {})
    if solver is not None:
        overrides["solver"] = solver
    config = HorseConfig(engine=engine, **overrides)
    horse = Horse(topology, policies=policies, config=config)
    horse.submit_flows(flows)
    return horse.run(until=until)


# ----------------------------------------------------------------------
# Pod workload: the incremental solver's target regime
# ----------------------------------------------------------------------

def pod_workload(
    pods: int = 40,
    hosts_per_pod: int = 8,
    flows_per_pod: int = 250,
    spread_s: float = 1.0,
    demand_bps: float = 40e6,
    capacity_bps: float = 1e9,
    seed: int = 7,
) -> Tuple[Topology, List[Flow]]:
    """Disjoint star pods carrying continuous flows.

    Traffic never crosses pods, so the network decomposes into many
    small link-sharing components — the regime where component-scoped
    re-solving pays off (each event re-solves one pod, a full solve
    re-solves them all).  With default parameters this yields
    ``pods * flows_per_pod`` (10k) concurrent flows once arrivals (spread
    over ``spread_s``) finish.  Rules are installed directly on the
    pipelines, so run with ``policies={}``.
    """
    rng = random.Random(seed)
    topo = Topology(name=f"pods-{pods}x{hosts_per_pod}")
    groups = []
    for p in range(pods):
        switch = topo.add_switch(f"p{p}s")
        attach_pipeline(switch)
        hosts = []
        for h in range(hosts_per_pod):
            host = topo.add_host(f"p{p}h{h}")
            topo.add_link(host, switch, capacity_bps=capacity_bps)
            hosts.append(host)
        for host in hosts:
            port = topo.egress_port(switch.name, host.name)
            switch.pipeline.install(
                Match(ip_dst=host.ip),
                (ApplyActions((Output(port.number),)),),
                priority=10,
            )
        groups.append(hosts)
    flows = []
    for p, hosts in enumerate(groups):
        for i in range(flows_per_pod):
            src, dst = rng.sample(hosts, 2)
            flows.append(
                Flow(
                    headers=tcp_flow(src.ip, dst.ip, 1024 + i, 80),
                    src=src.name,
                    dst=dst.name,
                    demand_bps=demand_bps,
                    start_time=round(rng.random() * spread_s, 6),
                )
            )
    return topo, flows


def timed_solver_run(
    topo: Topology, flows: List[Flow], solver: str, until: float
) -> Tuple[float, List[float]]:
    """Run the flow engine over a prepared (rules-installed) workload
    and return (wall seconds, final per-flow rate vector in flow order)."""
    ordered = sorted(flows, key=lambda f: f.flow_id)
    start = time.perf_counter()
    run_engine(topo, flows, engine="flow", policies={}, until=until,
               solver=solver)
    wall = time.perf_counter() - start
    return wall, [f.rate_bps for f in ordered]


# ----------------------------------------------------------------------
# Benchmark baselines (BENCH_e2.json)
# ----------------------------------------------------------------------

def calibration_score(loops: int = 2_000_000) -> float:
    """A seconds-per-unit score of this machine's Python speed.

    Baselines divide wall times by this score, so the committed numbers
    transfer across machines: a 2x slower host scores 2x higher and its
    normalized times land near the baseline.
    """
    start = time.perf_counter()
    total = 0
    for i in range(loops):
        total += i & 7
    elapsed = time.perf_counter() - start
    assert total >= 0
    return elapsed / 0.1  # ~0.1 s on the reference machine


def load_baseline() -> Optional[dict]:
    if not os.path.exists(BASELINE_PATH):
        return None
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def update_baseline(entries: Dict[str, dict], score: float) -> dict:
    """Merge normalized benchmark entries into BENCH_e2.json."""
    doc = load_baseline() or {"description": (
        "Calibration-normalized benchmark baselines; refresh with "
        "`python -m benchmarks.smoke --update` (see docs/testing.md)."
    ), "entries": {}}
    doc["calibration_score"] = round(score, 4)
    doc["entries"].update(entries)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc
