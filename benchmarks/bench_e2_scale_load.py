"""E2 ("Figure 4"): simulation runtime vs traffic load.

The poster targets "high traffic loads".  We fix the fabric (IXP, 16
members) and sweep the offered load, measuring how runtime scales with
the number of flows for the flow-level engine, plus packet-level points
at the loads it can finish.

Expected shape: flow-level runtime grows roughly linearly in flow count
(wall time per flow stays within a small factor across a 16x load
sweep); packet-level cost per flow is far higher because it pays per
packet, not per flow.
"""

import statistics

import pytest

from .harness import (
    calibration_score,
    ixp_workload,
    pod_workload,
    record,
    rows,
    run_engine,
    timed_solver_run,
    update_baseline,
    write_table,
)

MEMBERS = 16
FLOW_FRACTIONS = [0.25, 0.5, 1.0, 2.0, 4.0]
PACKET_FRACTIONS = [0.25, 0.5]
FLOW_DURATION = 2.0
PACKET_DURATION = 0.4

#: Solver hot-path comparison: 40 pods x 250 continuous flows = 10k
#: concurrent flows once the 1-second arrival spread completes.
HOTPATH_PODS = 40
HOTPATH_FLOWS_PER_POD = 250
HOTPATH_UNTIL = 1.5
#: The full solver re-solves all 10k flows per event, so one round is
#: already minutes of wall time; the cheap incremental runs repeat.
HOTPATH_ROUNDS = {"full": 1, "incremental": 3}


def _run(engine: str, load_fraction: float, duration: float):
    fabric, flows = ixp_workload(
        MEMBERS, duration_s=duration, load_fraction=load_fraction
    )
    result = run_engine(fabric, flows, engine=engine, until=duration + 30.0)
    record(
        "E2",
        {
            "engine": engine,
            "load_x": load_fraction,
            "flows": len(flows),
            "events": result.events,
            "wall_s": round(result.wall_time_s, 3),
            "wall_ms_per_flow": round(
                1000.0 * result.wall_time_s / max(len(flows), 1), 3
            ),
            "events_per_s": round(result.events_per_second),
            "delivered": round(result.delivered_fraction, 3),
        },
    )
    return result


@pytest.mark.parametrize("fraction", FLOW_FRACTIONS)
def bench_e2_flow_level(benchmark, fraction):
    result = benchmark.pedantic(
        _run, args=("flow", fraction, FLOW_DURATION), rounds=1, iterations=1
    )
    assert result.delivered_fraction > 0.99


@pytest.mark.parametrize("fraction", PACKET_FRACTIONS)
def bench_e2_packet_level(benchmark, fraction):
    result = benchmark.pedantic(
        _run, args=("packet", fraction, PACKET_DURATION), rounds=1, iterations=1
    )
    assert result.engine_summary["packets_delivered"] > 0


def _hotpath_once(solver: str):
    topo, flows = pod_workload(
        pods=HOTPATH_PODS, flows_per_pod=HOTPATH_FLOWS_PER_POD
    )
    return timed_solver_run(topo, flows, solver, until=HOTPATH_UNTIL)


@pytest.mark.parametrize("solver", ["full", "incremental"])
def bench_e2_solver_hotpath(benchmark, solver):
    """Incremental vs full re-solve at 10k concurrent flows.

    Both modes run the identical component kernel, so the final rate
    vectors must match bitwise; the incremental mode just re-solves only
    the pod an arrival touched."""
    walls = []
    rates = []

    def _once():
        wall, rate_vector = _hotpath_once(solver)
        walls.append(wall)
        rates.append(rate_vector)
        return wall

    benchmark.pedantic(_once, rounds=HOTPATH_ROUNDS[solver], iterations=1)
    record(
        "E2-hotpath",
        {
            "solver": solver,
            "flows": HOTPATH_PODS * HOTPATH_FLOWS_PER_POD,
            "rounds": len(walls),
            "wall_median_s": round(statistics.median(walls), 3),
        },
    )
    record("E2-hotpath-rates", {"solver": solver, "rates": rates[-1]})


def bench_e2_hotpath_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_solver = {r["solver"]: r for r in rows("E2-hotpath")}
    rates = {r["solver"]: r["rates"] for r in rows("E2-hotpath-rates")}
    # Differential gate: bitwise-identical rate vectors.
    assert rates["full"] == rates["incremental"]
    full_s = by_solver["full"]["wall_median_s"]
    inc_s = by_solver["incremental"]["wall_median_s"]
    speedup = full_s / inc_s
    assert speedup >= 3.0, (by_solver, speedup)
    # Refresh the committed regression baseline (normalized by machine
    # calibration so the numbers transfer across hosts).
    score = calibration_score()
    update_baseline(
        {
            "e2_hotpath_full_10k": {
                "wall_s": full_s,
                "normalized": round(full_s / score, 3),
            },
            "e2_hotpath_incremental_10k": {
                "wall_s": inc_s,
                "normalized": round(inc_s / score, 3),
            },
            "e2_hotpath_speedup": {"value": round(speedup, 2)},
        },
        score,
    )
    write_table("E2-hotpath", "solver hot path at 10k concurrent flows")


def bench_e2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = rows("E2")
    flow_rows = [r for r in table if r["engine"] == "flow"]
    packet_rows = [r for r in table if r["engine"] == "packet"]
    # Shape 1: flow-level per-flow cost stays within ~8x across the
    # 16x load sweep (roughly linear scaling in flow events).
    costs = [r["wall_ms_per_flow"] for r in flow_rows]
    assert max(costs) < 8 * max(min(costs), 0.01), costs
    # Shape 2: packet-level costs far more per flow at matched load.
    flow_low = next(r for r in flow_rows if r["load_x"] == 0.25)
    packet_low = next(r for r in packet_rows if r["load_x"] == 0.25)
    assert (
        packet_low["wall_ms_per_flow"] > 5 * flow_low["wall_ms_per_flow"]
    ), (packet_low, flow_low)
    write_table("E2", "runtime vs offered load (IXP-16)")
