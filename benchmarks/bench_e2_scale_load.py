"""E2 ("Figure 4"): simulation runtime vs traffic load.

The poster targets "high traffic loads".  We fix the fabric (IXP, 16
members) and sweep the offered load, measuring how runtime scales with
the number of flows for the flow-level engine, plus packet-level points
at the loads it can finish.

Expected shape: flow-level runtime grows roughly linearly in flow count
(wall time per flow stays within a small factor across a 16x load
sweep); packet-level cost per flow is far higher because it pays per
packet, not per flow.
"""

import pytest

from .harness import ixp_workload, record, rows, run_engine, write_table

MEMBERS = 16
FLOW_FRACTIONS = [0.25, 0.5, 1.0, 2.0, 4.0]
PACKET_FRACTIONS = [0.25, 0.5]
FLOW_DURATION = 2.0
PACKET_DURATION = 0.4


def _run(engine: str, load_fraction: float, duration: float):
    fabric, flows = ixp_workload(
        MEMBERS, duration_s=duration, load_fraction=load_fraction
    )
    result = run_engine(fabric, flows, engine=engine, until=duration + 30.0)
    record(
        "E2",
        {
            "engine": engine,
            "load_x": load_fraction,
            "flows": len(flows),
            "events": result.events,
            "wall_s": round(result.wall_time_s, 3),
            "wall_ms_per_flow": round(
                1000.0 * result.wall_time_s / max(len(flows), 1), 3
            ),
            "events_per_s": round(result.events_per_second),
            "delivered": round(result.delivered_fraction, 3),
        },
    )
    return result


@pytest.mark.parametrize("fraction", FLOW_FRACTIONS)
def bench_e2_flow_level(benchmark, fraction):
    result = benchmark.pedantic(
        _run, args=("flow", fraction, FLOW_DURATION), rounds=1, iterations=1
    )
    assert result.delivered_fraction > 0.99


@pytest.mark.parametrize("fraction", PACKET_FRACTIONS)
def bench_e2_packet_level(benchmark, fraction):
    result = benchmark.pedantic(
        _run, args=("packet", fraction, PACKET_DURATION), rounds=1, iterations=1
    )
    assert result.engine_summary["packets_delivered"] > 0


def bench_e2_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = rows("E2")
    flow_rows = [r for r in table if r["engine"] == "flow"]
    packet_rows = [r for r in table if r["engine"] == "packet"]
    # Shape 1: flow-level per-flow cost stays within ~8x across the
    # 16x load sweep (roughly linear scaling in flow events).
    costs = [r["wall_ms_per_flow"] for r in flow_rows]
    assert max(costs) < 8 * max(min(costs), 0.01), costs
    # Shape 2: packet-level costs far more per flow at matched load.
    flow_low = next(r for r in flow_rows if r["load_x"] == 0.25)
    packet_low = next(r for r in packet_rows if r["load_x"] == 0.25)
    assert (
        packet_low["wall_ms_per_flow"] > 5 * flow_low["wall_ms_per_flow"]
    ), (packet_low, flow_low)
    write_table("E2", "runtime vs offered load (IXP-16)")
