"""Benchmark smoke: a downsized E2 run gated against BENCH_e2.json.

Runs in about a minute, so CI can afford it on every push.  Two cases:

- ``smoke_ixp_flow``: IXP-8 replay through the flow engine (the bread
  and butter E2 workload, downsized);
- ``smoke_hotpath_incremental``: the pod hot-path workload (downsized to
  8 pods x 60 flows) under the default incremental solver;
- ``smoke_kernel_churn``: the E14 reschedule churn (downsized to 2k
  timers x 10 rounds) through the compacting kernel.

Each case runs best-of-3 and is normalized by :func:`calibration_score`
so the committed baseline transfers across machines.  A case fails when
its normalized time exceeds the committed baseline by more than the
regression threshold (20%).

Usage::

    python -m benchmarks.smoke            # compare against the baseline
    python -m benchmarks.smoke --update   # refresh the committed baseline
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import (
    calibration_score,
    ixp_workload,
    load_baseline,
    pod_workload,
    run_engine,
    timed_solver_run,
    update_baseline,
)

#: Fail when a case runs >20% slower (normalized) than the baseline.
SLOWDOWN_LIMIT = 1.20
ROUNDS = 3


def _smoke_ixp_flow() -> float:
    fabric, flows = ixp_workload(8, duration_s=1.0, load_fraction=0.5)
    start = time.perf_counter()
    result = run_engine(fabric, flows, engine="flow", until=31.0)
    wall = time.perf_counter() - start
    assert result.delivered_fraction > 0.99
    return wall


def _smoke_hotpath_incremental() -> float:
    topo, flows = pod_workload(pods=8, hosts_per_pod=8, flows_per_pod=60)
    wall, rates = timed_solver_run(topo, flows, "incremental", until=1.5)
    assert sum(1 for r in rates if r > 0) == len(flows)
    return wall


def _smoke_kernel_churn() -> float:
    from .bench_e14_kernel import churn_reschedule

    timers_n = 2_000
    wall, peak, fired, compactions = churn_reschedule(timers_n, 10)
    assert len(fired) == timers_n
    assert compactions > 0
    assert peak <= 2 * timers_n + 64
    return wall


CASES = {
    "smoke_ixp_flow": _smoke_ixp_flow,
    "smoke_hotpath_incremental": _smoke_hotpath_incremental,
    "smoke_kernel_churn": _smoke_kernel_churn,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.smoke", description=__doc__
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write measured times into BENCH_e2.json instead of comparing",
    )
    args = parser.parse_args(argv)

    score = calibration_score()
    print(f"calibration score: {score:.3f} (1.0 = reference machine)")

    measured = {}
    for name, case in CASES.items():
        walls = [case() for _ in range(ROUNDS)]
        best = min(walls)
        measured[name] = {
            "wall_s": round(best, 3),
            "normalized": round(best / score, 3),
        }
        print(f"{name}: best-of-{ROUNDS} {best:.3f}s "
              f"(normalized {best / score:.3f})")

    if args.update:
        update_baseline(measured, score)
        print("baseline updated")
        return 0

    baseline = load_baseline()
    if baseline is None:
        print("no BENCH_e2.json baseline; run with --update first",
              file=sys.stderr)
        return 2

    failures = []
    for name, result in measured.items():
        entry = baseline.get("entries", {}).get(name)
        if entry is None:
            failures.append(f"{name}: no baseline entry (run --update)")
            continue
        ratio = result["normalized"] / entry["normalized"]
        verdict = "ok" if ratio <= SLOWDOWN_LIMIT else "REGRESSION"
        print(f"{name}: {ratio:.2f}x baseline ({verdict})")
        if ratio > SLOWDOWN_LIMIT:
            failures.append(
                f"{name}: normalized {result['normalized']} vs baseline "
                f"{entry['normalized']} ({ratio:.2f}x > {SLOWDOWN_LIMIT}x)"
            )
    if failures:
        print("benchmark smoke failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("benchmark smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
