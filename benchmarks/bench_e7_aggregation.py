"""E7 (ablation): flow aggregation granularity.

The poster's core discussion is finding "the right level of
abstraction".  Horse lets the user pick the aggregation of a "data
flow": per-5-tuple microflows or coarse per-member-pair aggregates.  We
offer the same total traffic both ways and measure the speed/accuracy
trade: aggregates collapse thousands of events into a few hundred, while
long-run per-link volumes stay close.

Expected shape: per-pair aggregation is several times faster with far
fewer events; busy-link carried bytes agree within tens of percent.
"""

import pytest

from repro.stats import mean_relative_error

from .harness import ixp_workload, record, rows, run_engine, write_table

MEMBERS = 16
DURATION = 4.0
HORIZON = 60.0


def _link_bytes(topology):
    return {d.key: d.src_port.tx_bytes for d in topology.directions()}


def _workload(granularity: str):
    from repro.ixp import build_ixp
    from repro.sim.rng import RngRegistry
    from repro.traffic import (
        FlowGenConfig,
        FlowGenerator,
        LogNormal,
        ixp_gravity_matrix,
    )
    from .harness import LOAD_PER_MEMBER_BPS

    fabric = build_ixp(MEMBERS, seed=13)
    matrix = ixp_gravity_matrix(
        fabric, total_bps=LOAD_PER_MEMBER_BPS * MEMBERS * 0.5
    )
    rng = RngRegistry(13).stream("e7")
    if granularity == "5-tuple":
        # Microflows sampling the matrix.  A log-normal size keeps the
        # realized volume close to the offered matrix (the default
        # Pareto tail's variance would swamp the granularity signal).
        generator = FlowGenerator(
            fabric.topology,
            rng,
            config=FlowGenConfig(mean_flow_bytes=2e6, min_demand_bps=20e6),
            size_sampler=LogNormal(rng, mean=2e6, sigma=1.0),
        )
        flows = generator.from_matrix(matrix, horizon_s=DURATION)
    else:
        # One continuous aggregate per member pair at the pair demand —
        # the exact same offered matrix, maximally aggregated.
        generator = FlowGenerator(fabric.topology, rng)
        flows = generator.constant_rate_flows(matrix, duration_s=DURATION)
    return fabric, flows


def _run(granularity: str):
    fabric, flows = _workload(granularity)
    result = run_engine(fabric, flows, engine="flow", until=HORIZON)
    record(
        "E7",
        {
            "granularity": granularity,
            "flows": len(flows),
            "events": result.events,
            "wall_s": round(result.wall_time_s, 4),
            "sent_GB": round(result.engine_summary["bytes_sent"] / 1e9, 3),
            "delivered": round(result.delivered_fraction, 3),
        },
    )
    return result, _link_bytes(fabric.topology)


@pytest.mark.parametrize("granularity", ["5-tuple", "per-pair"])
def bench_e7_granularity(benchmark, granularity):
    result, link_bytes = benchmark.pedantic(
        _run, args=(granularity,), rounds=1, iterations=1
    )
    record("E7-links", {"granularity": granularity, "bytes": link_bytes})
    assert result.delivered_fraction > 0.99


def bench_e7_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_mode = {r["granularity"]: r for r in rows("E7")}
    links = {r["granularity"]: r["bytes"] for r in rows("E7-links")}
    fine = by_mode["5-tuple"]
    coarse = by_mode["per-pair"]
    # Aggregation collapses the event count dramatically.
    assert coarse["events"] < fine["events"] / 3, (coarse, fine)
    # Long-run per-link volumes agree on busy links.  (The microflow
    # trace is a Poisson sample of the matrix the aggregate offers
    # exactly, so some sampling error is expected.)
    # Aggregate over the fattest links (edge uplinks / core), where many
    # pairs mix and the Poisson sampling noise of the microflow trace
    # averages out.
    busy = [k for k, v in links["5-tuple"].items() if v > 200e6]
    err = mean_relative_error(links["per-pair"], links["5-tuple"], keys=busy)
    assert busy, "no busy links to compare"
    assert err < 0.35, err
    fine["busy_link_err_vs_fine"] = 0.0
    coarse["busy_link_err_vs_fine"] = round(err, 3)
    write_table("E7", "aggregation granularity trade (IXP-16)")
