"""E14: pending-event-set scalability under cancellation churn.

Reschedulable timers tear up and re-issue projections constantly (a
flow-completion event is retimed on every rate change).  Under the
pure-lazy kernel each retiming is cancel-and-push: the tombstone stays
in the heap until popped, so a churn-heavy run's heap grows with the
number of *reschedules*, not the number of live timers, and every
push/pop pays log of that inflated size.  The E14 kernel adds
stale-entry accounting with threshold-triggered compaction plus a
first-class ``Simulator.reschedule``; this experiment gates both claims
on a cancel-heavy workload (~200k retimings over 10k live timers):

* **speedup** — the reschedule+compaction path must beat the pure-lazy
  cancel-and-push path by >= 2x wall clock;
* **bounded memory** — the compacting heap's peak raw size must stay
  <= 2x the live timers (the lazy heap grows to ~(rounds+1)x);
* **transparency** — both paths must fire the identical event-time
  sequence (compaction and rescheduling change *performance only*).

Runs both as a pytest benchmark (``make bench``) and as a standalone
CI gate::

    python -m benchmarks.bench_e14_kernel
"""

from __future__ import annotations

import sys
import time

from repro.sim import HeapEventQueue, Simulator
from repro.sim.queue import DEFAULT_MIN_COMPACT_SIZE

from .harness import record, rows, write_table

SPEEDUP_LIMIT = 2.0
#: Live timers and reschedule rounds: ~200k retimings total.
N_TIMERS = 10_000
ROUNDS = 20
#: Timers sit far in the future while the churn happens, then all fire.
T_BASE = 1_000.0
SPACING = 1e-3


def _target(i: int, round_no: int) -> float:
    """Deterministic retiming for timer ``i`` at churn round ``round_no``
    (round -1 is the initial schedule).  Times stay distinct per timer,
    so the fired sequence is a pure function of the final round."""
    return T_BASE + i * SPACING + (round_no + 1) * 0.5


def churn_lazy(timers_n: int = N_TIMERS, rounds: int = ROUNDS) -> tuple:
    """The pre-E14 idiom: direct cancel + fresh event, never compacting."""
    queue = HeapEventQueue(compaction_threshold=None)
    sim = Simulator(queue=queue)
    fired = []
    callback = lambda s: fired.append(s.now)  # noqa: E731
    timers = [sim.call_at(_target(i, -1), callback) for i in range(timers_n)]
    start = time.perf_counter()
    for round_no in range(rounds):
        for i in range(timers_n):
            timers[i].cancel()
            timers[i] = sim.call_at(_target(i, round_no), callback)
    sim.run()
    wall = time.perf_counter() - start
    return wall, queue.peak_size, fired


def churn_reschedule(timers_n: int = N_TIMERS, rounds: int = ROUNDS) -> tuple:
    """The E14 path: ``Simulator.reschedule`` on the compacting queue."""
    queue = HeapEventQueue()  # default threshold 0.5
    sim = Simulator(queue=queue)
    fired = []
    callback = lambda s: fired.append(s.now)  # noqa: E731
    timers = [sim.call_at(_target(i, -1), callback) for i in range(timers_n)]
    start = time.perf_counter()
    for round_no in range(rounds):
        for i in range(timers_n):
            timers[i] = sim.reschedule(timers[i], _target(i, round_no))
    sim.run()
    wall = time.perf_counter() - start
    return wall, queue.peak_size, fired, queue.compactions


def run_e14() -> dict:
    wall_lazy, peak_lazy, fired_lazy = churn_lazy()
    wall_new, peak_new, fired_new, compactions = churn_reschedule()
    assert fired_lazy == fired_new, (
        "compaction/reschedule changed the fired event sequence "
        f"({len(fired_lazy)} vs {len(fired_new)} events)"
    )
    row = {
        "timers": N_TIMERS,
        "reschedules": N_TIMERS * ROUNDS,
        "wall_lazy_s": round(wall_lazy, 3),
        "wall_resched_s": round(wall_new, 3),
        "speedup": round(wall_lazy / wall_new, 2),
        "peak_heap_lazy": peak_lazy,
        "peak_heap_resched": peak_new,
        "compactions": compactions,
    }
    record("E14", row)
    return row


def check_e14(row: dict) -> None:
    assert row["speedup"] >= SPEEDUP_LIMIT, row
    assert row["peak_heap_resched"] <= 2 * N_TIMERS + DEFAULT_MIN_COMPACT_SIZE, row
    assert row["compactions"] > 0, row
    # The lazy heap really does inflate — otherwise this workload
    # would not be measuring what it claims to.
    assert row["peak_heap_lazy"] > 4 * N_TIMERS, row


def bench_e14_kernel_churn(benchmark):
    row = benchmark.pedantic(run_e14, rounds=1, iterations=1)
    check_e14(row)


def bench_e14_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_table("E14", "event kernel: reschedule+compaction vs pure-lazy churn")
    assert rows("E14")


def main() -> int:
    row = run_e14()
    print(
        f"e14: {row['timers']} timers, {row['reschedules']} reschedules  "
        f"lazy {row['wall_lazy_s']}s (peak heap {row['peak_heap_lazy']})  "
        f"resched {row['wall_resched_s']}s (peak heap "
        f"{row['peak_heap_resched']}, {row['compactions']} compactions)  "
        f"speedup {row['speedup']}x"
    )
    check_e14(row)
    print("e14: gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
