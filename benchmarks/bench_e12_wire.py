"""E12: control-path cost of real OpenFlow connections vs in-process.

The follow-up paper re-adds real controller connections to Horse; the
price is that every reactive exchange now crosses a TCP socket (encode,
kernel round trip, decode) instead of a Python method call.  This
experiment measures that price on a learning-switch workload whose
every flow triggers packet-ins: the same topology and traffic run once
with the in-proc ``L2LearningApp`` and once with ``control="wire"``
plus the built-in learning client over loopback, and the gate is

* identical run digests (the wire leg must not change the simulation),
* wire control-path wall clock <= 25x the in-proc control path
  (best-of-N walls; loopback syscalls are expected to cost 1-2 orders
  of magnitude more than method calls, but not unboundedly more).

Also reports per-exchange latency: blocked wall seconds divided by
completed round trips.

Runs both as a pytest benchmark (``make bench``) and as a standalone
CI smoke gate::

    python -m benchmarks.bench_e12_wire
"""

from __future__ import annotations

import sys
import time

from repro import Horse, HorseConfig
from repro.control.apps import L2LearningApp
from repro.control.controller import Controller
from repro.flowsim import Flow
from repro.net.generators import linear
from repro.openflow.headers import tcp_flow
from repro.runtime.scenario import reset_id_counters
from repro.stats.export import run_digest

from .harness import record, rows, write_table

OVERHEAD_LIMIT = 25.0
ROUNDS = 3
HOSTS_PER_SWITCH = 2
SWITCHES = 3
FLOW_PAIRS = 24


def _flows(topo):
    """A packet-in-heavy workload: many short bidirectional flows."""
    hosts = [h.name for h in topo.hosts]
    flows = []
    for i in range(FLOW_PAIRS):
        src = hosts[i % len(hosts)]
        dst = hosts[(i + 1 + i // len(hosts)) % len(hosts)]
        if src == dst:
            dst = hosts[(i + 2) % len(hosts)]
        s, d = topo.host(src), topo.host(dst)
        flows.append(
            Flow(
                headers=tcp_flow(s.ip, d.ip, 1000 + i, 80,
                                 eth_src=s.mac, eth_dst=d.mac),
                src=src,
                dst=dst,
                demand_bps=2e6,
                size_bytes=200_000,
                start_time=0.05 * i,
            )
        )
    return flows


def _run(wire: bool):
    reset_id_counters()
    topo = linear(SWITCHES, hosts_per_switch=HOSTS_PER_SWITCH)
    if wire:
        horse = Horse(
            topo,
            config=HorseConfig(control="wire", wire_client="learning",
                               wire_latency_budget_s=30.0),
        )
    else:
        controller = Controller()
        controller.add_app(L2LearningApp())
        horse = Horse(topo, controller=controller)
    horse.submit_flows(_flows(topo))
    start = time.perf_counter()
    result = horse.run()
    wall = time.perf_counter() - start
    horse.shutdown_wire()
    return result, wall


def run_e12() -> dict:
    """One full comparison; returns the measured row (also recorded)."""
    inproc_walls, wire_walls = [], []
    for _ in range(ROUNDS):
        inproc_result, wall = _run(wire=False)
        inproc_walls.append(wall)
    for _ in range(ROUNDS):
        wire_result, wall = _run(wire=True)
        wire_walls.append(wall)

    inproc_digest = run_digest(inproc_result)
    wire_digest = run_digest(wire_result)
    metrics = wire_result.metrics
    round_trips = metrics.get("wire.gate_completed", 0.0)
    blocked = metrics.get("wire.gate_blocked_wall_s", 0.0)
    per_exchange_us = (
        blocked / round_trips * 1e6 if round_trips else 0.0
    )
    overhead = min(wire_walls) / min(inproc_walls)
    row = {
        "packet_ins": int(metrics.get("wire.packet_ins_sent", 0.0)),
        "round_trips": int(round_trips),
        "budget_misses": int(metrics.get("wire.gate_budget_misses", 0.0)),
        "per_exchange_us": round(per_exchange_us, 1),
        "inproc_wall_s": round(min(inproc_walls), 4),
        "wire_wall_s": round(min(wire_walls), 4),
        "overhead": round(overhead, 2),
        "digests_match": inproc_digest == wire_digest,
    }
    record("E12", row)
    return row


def bench_e12_wire_overhead(benchmark):
    row = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    assert row["digests_match"], row
    assert row["overhead"] <= OVERHEAD_LIMIT, row


def bench_e12_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_table("E12", "wire vs in-proc control path: wall clock and latency")
    assert rows("E12")


def main() -> int:
    row = run_e12()
    print(f"E12: {row['packet_ins']} packet-ins over the wire, "
          f"{row['per_exchange_us']} us/exchange, "
          f"overhead={row['overhead']}x (limit {OVERHEAD_LIMIT}x), "
          f"digests_match={row['digests_match']}")
    failures = []
    if not row["digests_match"]:
        failures.append("wire and in-proc run digests differ")
    if row["budget_misses"]:
        failures.append(f"{row['budget_misses']} latency-budget misses")
    if row["overhead"] > OVERHEAD_LIMIT:
        failures.append(
            f"wire control path {row['overhead']}x in-proc "
            f"> {OVERHEAD_LIMIT}x"
        )
    if failures:
        for failure in failures:
            print(f"E12 FAILED: {failure}", file=sys.stderr)
        return 1
    print("E12 wire gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
