"""E3 ("Table 1"): flow-level accuracy against packet-level ground truth.

The poster promises to evaluate "accuracy ... under multiple
configurations".  We run identical flow schedules through both engines
on three topologies and compare (a) per-flow goodput over the run and
(b) per-link carried bytes, reporting mean relative error.

Expected shape: steady-state flow-level statistics land within tens of
percent of the AIMD packet baseline (the fluid model is the limit of
fair sharing), with error growing under heavier contention.
"""

import pytest

from repro.flowsim import Flow
from repro.net.generators import fat_tree, linear, single_switch
from repro.openflow.headers import tcp_flow
from repro.stats import mean_relative_error

from .harness import record, rows, run_engine, write_table

DURATION = 4.0
HORIZON = 40.0


def _flows(topo, pairs, demand=8e6):
    flows = []
    for i, (src, dst) in enumerate(pairs):
        s, d = topo.host(src), topo.host(dst)
        flows.append(
            Flow(
                headers=tcp_flow(s.ip, d.ip, 1000 + i, 80,
                                 eth_src=s.mac, eth_dst=d.mac),
                src=src,
                dst=dst,
                demand_bps=demand,
                duration_s=DURATION,
            )
        )
    return flows


def _scenario(name):
    """Topology factory + flow pairs per scenario."""
    if name == "linear-2flows":
        make = lambda: linear(2, hosts_per_switch=1, capacity_bps=10e6)
        pairs = [("h1", "h2"), ("h1", "h2")]
        demand = 8e6
    elif name == "star-crossload":
        make = lambda: single_switch(4, capacity_bps=10e6)
        pairs = [("h1", "h2"), ("h3", "h2"), ("h4", "h1"), ("h2", "h3")]
        demand = 8e6
    else:  # fat-tree contention through shared links
        make = lambda: fat_tree(2, capacity_bps=10e6)
        pairs = [("h1", "h2"), ("h2", "h1"), ("h1", "h2")]
        demand = 8e6
    return make, pairs, demand


def _goodput(flows):
    out = {}
    for i, flow in enumerate(flows):
        end = flow.end_time or DURATION
        span = max(end - flow.start_time, 1e-9)
        out[i] = flow.bytes_delivered * 8.0 / span
    return out


def _link_bytes(topo):
    out = {}
    for direction in topo.directions():
        key = direction.key
        out[key] = direction.src_port.tx_bytes
    return out


def _run_pair(name):
    make, pairs, demand = _scenario(name)
    # Fresh topologies per engine: counters must not mix.
    topo_flow = make()
    flows_flow = _flows(topo_flow, pairs, demand)
    result_flow = run_engine(
        topo_flow, flows_flow, engine="flow", until=HORIZON
    )
    topo_pkt = make()
    flows_pkt = _flows(topo_pkt, pairs, demand)
    result_pkt = run_engine(
        topo_pkt, flows_pkt, engine="packet", until=HORIZON
    )
    goodput_err = mean_relative_error(_goodput(flows_flow), _goodput(flows_pkt))
    # Compare only links that actually carried traffic in the baseline.
    pkt_bytes = _link_bytes(topo_pkt)
    flow_bytes = _link_bytes(topo_flow)
    busy = [k for k, v in pkt_bytes.items() if v > 1e4]
    link_err = mean_relative_error(flow_bytes, pkt_bytes, keys=busy)
    total_flow = sum(f.bytes_delivered for f in flows_flow)
    total_pkt = sum(f.bytes_delivered for f in flows_pkt)
    record(
        "E3",
        {
            "scenario": name,
            "flows": len(pairs),
            "goodput_err": round(goodput_err, 3),
            "link_bytes_err": round(link_err, 3),
            "delivered_flow_MB": round(total_flow / 1e6, 2),
            "delivered_pkt_MB": round(total_pkt / 1e6, 2),
            "flow_wall_s": round(result_flow.wall_time_s, 3),
            "pkt_wall_s": round(result_pkt.wall_time_s, 3),
        },
    )
    return goodput_err, link_err


@pytest.mark.parametrize(
    "scenario", ["linear-2flows", "star-crossload", "fattree-shared"]
)
def bench_e3_accuracy(benchmark, scenario):
    goodput_err, link_err = benchmark.pedantic(
        _run_pair, args=(scenario,), rounds=1, iterations=1
    )
    # The fluid model must land in the right ballpark of the AIMD truth.
    assert goodput_err < 0.40, goodput_err
    assert link_err < 0.40, link_err


def bench_e3_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = rows("E3")
    mean_err = sum(r["goodput_err"] for r in table) / len(table)
    assert mean_err < 0.30, mean_err
    write_table("E3", "flow-level vs packet-level accuracy")
