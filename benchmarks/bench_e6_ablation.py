"""E6 (ablation): design choices called out in DESIGN.md.

(a) Pending-event set: binary heap vs naive sorted list, on the push/pop
    mix a flow-churn workload produces.  Expected shape: the heap wins
    and the gap widens with queue size (O(log n) vs O(n) insert).
(b) Max-min re-solve: full solve vs incremental connected-component
    solve, on spatially clustered traffic (disjoint clusters).  Expected
    shape: identical allocations (asserted), with the incremental solver
    touching only the changed cluster (scope << total flows).
"""

import random
import time

import pytest

from repro.flowsim import Flow, FlowLevelEngine
from repro.net.generators import single_switch
from repro.net.topology import Topology
from repro.openflow import ApplyActions, Match, Output, attach_pipeline
from repro.openflow.headers import tcp_flow
from repro.sim import Event, HeapEventQueue, Simulator, SortedListEventQueue

from .harness import record, rows, write_table


# ----------------------------------------------------------------------
# (a) Event queue implementations
# ----------------------------------------------------------------------

def _churn(queue, size, seed=5):
    """Random interleaved push/pop mix, like flow arrivals/completions."""
    rng = random.Random(seed)
    start = time.perf_counter()
    for _ in range(size):
        queue.push(Event(rng.random() * 1000.0))
    for _ in range(size * 4):
        if rng.random() < 0.5 and len(queue):
            queue.pop()
        else:
            queue.push(Event(rng.random() * 1000.0))
    while len(queue):
        queue.pop()
    return time.perf_counter() - start


@pytest.mark.parametrize("size", [1000, 10000, 30000])
@pytest.mark.parametrize("impl", ["heap", "sorted-list"])
def bench_e6_event_queue(benchmark, impl, size):
    queue_cls = HeapEventQueue if impl == "heap" else SortedListEventQueue
    elapsed = benchmark.pedantic(
        _churn, args=(queue_cls(), size), rounds=1, iterations=1
    )
    record(
        "E6a",
        {"impl": impl, "size": size, "seconds": round(elapsed, 4)},
    )


def bench_e6_queue_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r["impl"], r["size"]): r["seconds"] for r in rows("E6a")}
    # The heap wins at the largest size (the production regime).
    assert by_key[("heap", 30000)] < by_key[("sorted-list", 30000)]
    write_table("E6a", "event queue ablation: heap vs sorted list")


# ----------------------------------------------------------------------
# (b) Incremental vs full max-min re-solve
# ----------------------------------------------------------------------

def _clustered_topology(clusters=6, hosts_per_cluster=6):
    """Disjoint star clusters inside one topology: traffic never crosses
    clusters, the best case for component-scoped re-solving."""
    topo = Topology(name="clusters")
    groups = []
    for c in range(clusters):
        switch = topo.add_switch(f"s{c + 1}")
        attach_pipeline(switch)
        hosts = []
        for h in range(hosts_per_cluster):
            host = topo.add_host(f"c{c}h{h + 1}")
            topo.add_link(host, switch, capacity_bps=100e6)
            hosts.append(host)
        groups.append(hosts)
    return topo, groups


def _cluster_flows(topo, groups, per_cluster=40, seed=3):
    rng = random.Random(seed)
    flows = []
    for hosts in groups:
        for i in range(per_cluster):
            src, dst = rng.sample(hosts, 2)
            flows.append(
                Flow(
                    headers=tcp_flow(src.ip, dst.ip, 2000 + i, 80),
                    src=src.name,
                    dst=dst.name,
                    demand_bps=50e6,
                    size_bytes=rng.randint(500_000, 4_000_000),
                    start_time=rng.random() * 2.0,
                )
            )
    return flows


def _install_star_rules(topo, groups):
    for c, hosts in enumerate(groups):
        switch = topo.switch(f"s{c + 1}")
        for host in hosts:
            port = topo.egress_port(switch.name, host.name)
            switch.pipeline.install(
                Match(ip_dst=host.ip),
                (ApplyActions((Output(port.number),)),),
                priority=10,
            )


def _run_solver(incremental: bool):
    topo, groups = _clustered_topology()
    _install_star_rules(topo, groups)
    flows = _cluster_flows(topo, groups)
    sim = Simulator()
    engine = FlowLevelEngine(
        sim, topo, solver="incremental" if incremental else "full"
    )
    engine.submit_all(flows)
    start = time.perf_counter()
    sim.run(until=120.0)
    engine.finish()
    elapsed = time.perf_counter() - start
    # Positional (flow ids are globally unique across runs).
    fcts = [round(f.end_time or -1.0, 4) for f in flows]
    scope = engine._incremental.last_scope if incremental else len(flows)
    return elapsed, fcts, engine.stats["rate_solves"], scope


@pytest.mark.parametrize("mode", ["full", "incremental"])
def bench_e6_solver(benchmark, mode):
    elapsed, fcts, solves, scope = benchmark.pedantic(
        _run_solver, args=(mode == "incremental",), rounds=1, iterations=1
    )
    record(
        "E6b",
        {
            "solver": mode,
            "flows": len(fcts),
            "rate_solves": solves,
            "last_scope": scope,
            "seconds": round(elapsed, 4),
        },
    )
    # Stash completion times for the parity check.
    record("E6b-fcts", {"solver": mode, "fcts": fcts})


def bench_e6_solver_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fcts = {r["solver"]: r["fcts"] for r in rows("E6b-fcts")}
    # Identical dynamics regardless of solver (exactness of the
    # component decomposition).
    assert fcts["full"] == fcts["incremental"]
    by_mode = {r["solver"]: r for r in rows("E6b")}
    # The incremental solver only touched one cluster on the last event.
    assert (
        by_mode["incremental"]["last_scope"]
        < by_mode["incremental"]["flows"] / 2
    )
    write_table("E6b", "solver ablation: full vs incremental re-solve")
