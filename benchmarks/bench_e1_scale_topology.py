"""E1 ("Figure 3"): simulation runtime vs topology size.

The poster claims Horse can "efficiently reproduce large scale
networks".  We scale an IXP fabric's member count at constant offered
load per member and measure wall-clock time for the flow-level engine,
against the in-repo packet-level baseline (the Mininet/ns-3 stand-in) on
the sizes it can finish.  The packet engine's per-simulated-second cost
is orders of magnitude higher, so its points use a shorter horizon; the
normalized column (wall seconds per simulated gigabyte of traffic) is
the comparable metric.

Expected shape: flow-level cost grows gently with members; packet-level
cost per simulated second at the SAME size is >= 5x higher.
"""

import pytest

from .harness import ixp_workload, record, rows, run_engine, write_table

FLOW_MEMBERS = [8, 16, 32, 64]
PACKET_MEMBERS = [4, 8]
FLOW_DURATION = 2.0
PACKET_DURATION = 0.5


def _run(members: int, engine: str, duration: float, load_fraction: float):
    fabric, flows = ixp_workload(
        members, duration_s=duration, load_fraction=load_fraction
    )
    result = run_engine(fabric, flows, engine=engine, until=duration + 30.0)
    gigabytes = max(result.engine_summary["bytes_sent"], 1.0) / 1e9
    record(
        "E1",
        {
            "engine": engine,
            "members": members,
            "switches": len(fabric.topology.switches),
            "flows": len(flows),
            "sim_s": round(result.sim_time_s, 2),
            "events": result.events,
            "wall_s": round(result.wall_time_s, 3),
            "wall_per_gb": round(result.wall_time_s / gigabytes, 4),
            "delivered": round(result.delivered_fraction, 3),
        },
    )
    return result


@pytest.mark.parametrize("members", FLOW_MEMBERS)
def bench_e1_flow_level(benchmark, members):
    result = benchmark.pedantic(
        _run, args=(members, "flow", FLOW_DURATION, 0.5), rounds=1, iterations=1
    )
    assert result.delivered_fraction > 0.99


@pytest.mark.parametrize("members", PACKET_MEMBERS)
def bench_e1_packet_level(benchmark, members):
    result = benchmark.pedantic(
        _run,
        args=(members, "packet", PACKET_DURATION, 0.5),
        rounds=1,
        iterations=1,
    )
    assert result.engine_summary["packets_delivered"] > 0


def bench_e1_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = rows("E1")
    by_key = {(r["engine"], r["members"]): r for r in table}
    # Shape 1: at the same size (8 members), flow-level is dramatically
    # cheaper per simulated gigabyte than packet-level.
    flow8 = by_key[("flow", 8)]["wall_per_gb"]
    packet8 = by_key[("packet", 8)]["wall_per_gb"]
    assert packet8 > 5 * flow8, (flow8, packet8)
    # Shape 2: flow-level scales to 8x the members the packet engine ran,
    # still in seconds of wall time.
    flow64 = by_key[("flow", 64)]
    assert flow64["wall_s"] < 120
    write_table("E1", "runtime vs topology size (IXP members)")
