"""E4 ("Table 2"): policy configuration sweep on the IXP fabric.

The poster's evaluation plan: "from basic forwarding based on source and
destination Media Access Control (MAC), to more complex combination of
policies such as load-balancing and application-layer peering."  We
replay the same IXP workload under increasingly rich policy stacks and
report runtime, installed rule count, and each policy's traffic effect.

Expected shape: richer stacks install more rules and cost more wall
time, and each policy visibly does its job — blackholing removes the
victim's traffic, metering caps the limited pair, load balancing spreads
the core.
"""

import pytest

from repro import Horse, HorseConfig
from repro.ixp import build_ixp
from repro.sim.rng import RngRegistry
from repro.traffic import IxpTraceSynthesizer

from .harness import BENCH_FLOW_CONFIG, LOAD_PER_MEMBER_BPS, record, rows, write_table

MEMBERS = 24
DURATION = 2.0
HORIZON = 40.0
SEED = 7


def _fabric_and_flows():
    fabric = build_ixp(MEMBERS, seed=SEED)
    synth = IxpTraceSynthesizer(
        fabric,
        peak_total_bps=LOAD_PER_MEMBER_BPS * MEMBERS,
        flow_config=BENCH_FLOW_CONFIG,
    )
    rng = RngRegistry(SEED).stream("e4")
    flows = synth.steady_flows(rng, duration_s=DURATION, load_fraction=0.5)
    return fabric, flows


def _policies(config_name, fabric):
    members = fabric.members
    victim = members[1].host_name
    limited_src = members[4].host_name
    limited_dst = members[3].host_name
    peer_src = members[6].host_name
    peer_dst = members[2].host_name
    base = {"forwarding": {"mode": "shortest-path", "match_on": "eth_dst"}}
    if config_name == "mac-fwd":
        return base
    if config_name == "lb":
        return {"load_balancing": {"mode": "ecmp", "match_on": "ip_dst"}}
    if config_name == "mac+ratelimit":
        return {
            **base,
            "rate_limiting": [
                {"src": limited_src, "dst": limited_dst, "rate": "50 Mbps"}
            ],
        }
    if config_name == "mac+blackhole":
        return {**base, "blackholing": [{"target": victim}]}
    if config_name == "combined":
        return {
            "load_balancing": {"mode": "ecmp", "match_on": "ip_dst"},
            "rate_limiting": [
                {"src": limited_src, "dst": limited_dst, "rate": "50 Mbps"}
            ],
            "blackholing": [{"target": victim}],
            "application_peering": [
                {"src": peer_src, "dst": peer_dst, "app": "http"}
            ],
        }
    raise ValueError(config_name)


def _member_rx_bytes(fabric, host_name):
    host = fabric.topology.host(host_name)
    return host.uplink_port.rx_bytes


def _run(config_name):
    fabric, flows = _fabric_and_flows()
    policies = _policies(config_name, fabric)
    horse = Horse(fabric.topology, policies=policies, config=HorseConfig())
    horse.submit_flows(flows)
    result = horse.run(until=HORIZON)
    victim = fabric.members[1].host_name
    limited_src = fabric.members[4].host_name
    limited_dst = fabric.members[3].host_name
    pair_flows = [
        f for f in flows if f.src == limited_src and f.dst == limited_dst
    ]
    rates = [
        f.bytes_delivered * 8.0 / max((f.end_time or HORIZON) - f.start_time, 1e-9)
        for f in pair_flows
    ]
    limited_goodput = max(rates) if rates else 0.0
    record(
        "E4",
        {
            "config": config_name,
            "flows": len(flows),
            "rules": result.rule_count,
            "wall_s": round(result.wall_time_s, 3),
            "delivered": round(result.delivered_fraction, 3),
            "goodput_gbps": round(result.goodput_bps() / 1e9, 3),
            "victim_rx_MB": round(_member_rx_bytes(fabric, victim) / 1e6, 2),
            "limited_peak_mbps": round(limited_goodput / 1e6, 2),
        },
    )
    return result, fabric, flows


@pytest.mark.parametrize(
    "config_name",
    ["mac-fwd", "lb", "mac+ratelimit", "mac+blackhole", "combined"],
)
def bench_e4_policy_stack(benchmark, config_name):
    result, fabric, flows = benchmark.pedantic(
        _run, args=(config_name,), rounds=1, iterations=1
    )
    assert result.rule_count > 0


def bench_e4_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_config = {r["config"]: r for r in rows("E4")}
    base = by_config["mac-fwd"]
    # Blackholing removes the victim's traffic; base config delivers it.
    assert base["victim_rx_MB"] > 1.0
    assert by_config["mac+blackhole"]["victim_rx_MB"] == 0.0
    assert by_config["combined"]["victim_rx_MB"] == 0.0
    # Rate limiting caps the limited pair's fastest flow at the meter
    # rate; unthrottled, the same flow runs well above it.
    assert base["limited_peak_mbps"] > 55.0
    assert by_config["mac+ratelimit"]["limited_peak_mbps"] <= 50.5
    assert by_config["combined"]["limited_peak_mbps"] <= 50.5
    # Richer stacks install more rules.
    assert by_config["combined"]["rules"] > base["rules"]
    # Everything except the blackholed victim still flows.
    assert by_config["combined"]["delivered"] > 0.8
    write_table("E4", "policy configuration sweep (IXP-24)")
