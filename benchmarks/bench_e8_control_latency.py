"""E8 (extension): control-plane latency vs reactive flow setup.

The poster's abstraction removes real OpenFlow connections, making the
control loop synchronous.  This experiment quantifies what that
abstraction hides: with reactive L2 learning, every first packet of a
flow waits on controller round trips, so flow completion times grow
with the control latency while a proactive policy is immune.

Expected shape: FCT grows monotonically with latency under the reactive
policy (more than the added round trips, since multi-hop setup pays per
switch); proactive forwarding is flat.
"""

import pytest

from repro import Flow, Horse, HorseConfig
from repro.net.generators import tree
from repro.openflow.headers import tcp_flow

from .harness import record, rows, write_table

LATENCIES_MS = [0.0, 1.0, 5.0, 20.0]
FLOW_SIZE = 1_000_000  # 1 MB at 100 Mb/s: 80 ms ideal


def _run(policy: str, latency_ms: float):
    topo = tree(2, 2)
    policies = (
        {"forwarding": "learning"}
        if policy == "reactive"
        else {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}}
    )
    horse = Horse(
        topo,
        policies=policies,
        config=HorseConfig(control_latency_s=latency_ms / 1000.0),
    )
    pairs = [("h1", "h4"), ("h2", "h3"), ("h4", "h1"), ("h3", "h2")]
    flows = []
    for i, (src, dst) in enumerate(pairs):
        s, d = topo.host(src), topo.host(dst)
        flows.append(
            Flow(
                headers=tcp_flow(s.ip, d.ip, 1000 + i, 80,
                                 eth_src=s.mac, eth_dst=d.mac),
                src=src,
                dst=dst,
                demand_bps=100e6,
                size_bytes=FLOW_SIZE,
                start_time=0.05 * i,  # staggered so learning can converge
            )
        )
    horse.submit_flows(flows)
    result = horse.run(until=120.0)
    fcts = [f.flow_completion_time for f in flows if f.flow_completion_time]
    mean_fct = sum(fcts) / len(fcts) if fcts else float("inf")
    record(
        "E8",
        {
            "policy": policy,
            "latency_ms": latency_ms,
            "completed": len(fcts),
            "mean_fct_ms": round(mean_fct * 1000.0, 2),
            "packet_ins": result.engine_summary["packet_ins"],
        },
    )
    return result, mean_fct


@pytest.mark.parametrize("latency_ms", LATENCIES_MS)
@pytest.mark.parametrize("policy", ["proactive", "reactive"])
def bench_e8_latency(benchmark, policy, latency_ms):
    result, mean_fct = benchmark.pedantic(
        _run, args=(policy, latency_ms), rounds=1, iterations=1
    )
    assert result.delivered_fraction == 1.0
    assert mean_fct < 10.0


def bench_e8_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = rows("E8")
    by_key = {(r["policy"], r["latency_ms"]): r["mean_fct_ms"] for r in table}
    # Proactive forwarding is latency-insensitive.
    proactive = [by_key[("proactive", l)] for l in LATENCIES_MS]
    assert max(proactive) - min(proactive) < 1.0, proactive
    # Reactive setup pays for control round trips: monotone growth, and
    # the 20 ms point is visibly slower than the synchronous one.
    reactive = [by_key[("reactive", l)] for l in LATENCIES_MS]
    assert reactive == sorted(reactive), reactive
    assert reactive[-1] > reactive[0] + 10.0, reactive
    write_table("E8", "control latency vs reactive flow setup cost")
