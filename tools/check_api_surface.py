#!/usr/bin/env python3
"""Golden-snapshot check of the stable ``repro.api`` surface.

Records every name in ``repro.api.__all__`` with its kind and — for
functions, methods, and classes — its signature, then diffs against the
committed snapshot (``tools/api-surface.json``).  Any drift (a removed
name, a changed signature, a new export that is not yet in the
snapshot) fails the check, so API breaks are a deliberate, reviewed
diff of the snapshot file rather than an accident.

Usage::

    python tools/check_api_surface.py            # verify (CI / make lint)
    python tools/check_api_surface.py --update   # regenerate the snapshot
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SNAPSHOT = os.path.join(ROOT, "tools", "api-surface.json")
sys.path.insert(0, os.path.join(ROOT, "src"))


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(?)"


def _describe(name: str, obj) -> dict:
    if inspect.isclass(obj):
        methods = {}
        for attr, member in sorted(vars(obj).items()):
            if attr.startswith("_") and attr != "__init__":
                continue
            if inspect.isfunction(member):
                methods[attr] = _signature(member)
            elif isinstance(member, classmethod):
                methods[attr] = _signature(member.__func__)
            elif isinstance(member, staticmethod):
                methods[attr] = _signature(member.__func__)
            elif isinstance(member, property):
                methods[attr] = "<property>"
        return {"kind": "class", "methods": methods}
    if inspect.isfunction(obj):
        return {"kind": "function", "signature": _signature(obj)}
    return {"kind": "constant", "type": type(obj).__name__}


def current_surface() -> dict:
    import repro.api as api

    missing = [name for name in api.__all__ if not hasattr(api, name)]
    if missing:
        raise SystemExit(f"repro.api.__all__ names missing attributes: {missing}")
    return {
        name: _describe(name, getattr(api, name)) for name in sorted(api.__all__)
    }


def _diff(snapshot: dict, current: dict) -> list:
    problems = []
    for name in snapshot:
        if name not in current:
            problems.append(f"removed from repro.api: {name}")
    for name in current:
        if name not in snapshot:
            problems.append(f"new export not in snapshot: {name}")
    for name, want in snapshot.items():
        have = current.get(name)
        if have is None or have == want:
            continue
        if want.get("kind") != have.get("kind"):
            problems.append(
                f"{name}: kind changed {want.get('kind')} -> {have.get('kind')}"
            )
            continue
        if want.get("kind") == "function":
            problems.append(
                f"{name}: signature changed {want.get('signature')} -> "
                f"{have.get('signature')}"
            )
            continue
        want_methods = want.get("methods", {})
        have_methods = have.get("methods", {})
        for method in want_methods:
            if method not in have_methods:
                problems.append(f"{name}.{method}: removed")
            elif want_methods[method] != have_methods[method]:
                problems.append(
                    f"{name}.{method}: signature changed "
                    f"{want_methods[method]} -> {have_methods[method]}"
                )
        for method in have_methods:
            if method not in want_methods:
                problems.append(f"{name}.{method}: new method not in snapshot")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="regenerate the committed snapshot"
    )
    args = parser.parse_args()
    current = current_surface()
    if args.update:
        with open(SNAPSHOT, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"api-surface: wrote {len(current)} exports to {SNAPSHOT}")
        return 0
    if not os.path.exists(SNAPSHOT):
        print(
            f"api-surface: no snapshot at {SNAPSHOT}; run with --update",
            file=sys.stderr,
        )
        return 1
    with open(SNAPSHOT) as handle:
        snapshot = json.load(handle)
    problems = _diff(snapshot, current)
    if problems:
        print("api-surface: the stable repro.api surface drifted:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        print(
            "  (intentional? rerun with --update and commit the diff)",
            file=sys.stderr,
        )
        return 1
    print(f"api-surface: {len(current)} exports match the snapshot")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
