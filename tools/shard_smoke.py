#!/usr/bin/env python3
"""Sharded-runtime smoke for CI (`make shard-smoke`).

Three gates:

1. **k=1 digest parity** — ``--shards 1`` must bypass the shard
   runtime entirely and reproduce the committed golden digests bit for
   bit on the shipped scenarios.
2. **k=4 crash-restart** — a 4-shard pod run with one shard
   hard-killed mid-protocol (via the ``REPRO_SHARD_FAULT`` hook) must
   restart that shard, replay it deterministically, and finish.
3. **crash == clean** — the crashed run's merged per-flow results must
   be identical to an undisturbed k=4 run.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.runtime.scenario import reset_id_counters, run_scenario  # noqa: E402
from repro.shard.runner import FAULT_ENV, FAULT_MARKER_ENV  # noqa: E402

GOLDEN_SCENARIOS = ["quickstart", "hybrid_demo", "wire_demo"]

POD_SCENARIO = {
    "schema_version": 1,
    "engine": "flow",
    "until": 5.0,
    "seed": 11,
    "topology": {
        "kind": "pods",
        "pods": 4,
        "hosts_per_pod": 4,
        "capacity": "100 Mbps",
    },
    "policies": {"forwarding": {"mode": "shortest-path", "match_on": "ip_dst"}},
    "traffic": {
        "kind": "matrix",
        "model": "pod-local",
        "total": "400 Mbps",
        "horizon_s": 2.0,
    },
    "shards": {"count": 4, "quantum_s": 1.0},
}


def check_digest_parity() -> None:
    golden_path = os.path.join(
        ROOT, "examples", "scenarios", "GOLDEN_DIGESTS.json"
    )
    with open(golden_path) as handle:
        goldens = json.load(handle)
    for name in GOLDEN_SCENARIOS:
        path = os.path.join(ROOT, "examples", "scenarios", f"{name}.json")
        with open(path) as handle:
            scenario = json.load(handle)
        scenario["shards"] = 1
        reset_id_counters()
        horse, result, _count = run_scenario(scenario)
        assert horse is not None, f"{name}: --shards 1 entered the shard runtime"
        from repro.stats.export import run_digest

        digest = run_digest(result)
        want = goldens[f"{name}.json"]
        assert digest == want, f"{name}: digest {digest} != golden {want}"
        print(f"shard-smoke: k=1 digest parity OK ({name})")


def flow_fingerprint(result) -> list:
    return [
        (
            f.flow_id,
            f.src,
            f.dst,
            round(f.bytes_delivered, 6),
            round(f.end_time, 9) if f.end_time is not None else None,
            f.state.value,
        )
        for f in sorted(result.flows, key=lambda f: f.flow_id)
    ]


def check_crash_restart() -> None:
    # Clean k=4 baseline.
    reset_id_counters()
    _horse, clean, clean_count = run_scenario(json.loads(json.dumps(POD_SCENARIO)))
    stats = clean.engine_stats
    assert stats["engine"] == "sharded" and stats["shards"] == 4, stats
    assert stats["restarts"] == 0, stats
    assert clean_count > 0

    # Same run with shard 2 hard-killed at round 1.
    marker = tempfile.mktemp(prefix="repro-shard-smoke-")
    os.environ[FAULT_ENV] = "2:1"
    os.environ[FAULT_MARKER_ENV] = marker
    try:
        reset_id_counters()
        _horse, crashed, crashed_count = run_scenario(
            json.loads(json.dumps(POD_SCENARIO))
        )
    finally:
        os.environ.pop(FAULT_ENV, None)
        os.environ.pop(FAULT_MARKER_ENV, None)
        if os.path.exists(marker):
            os.remove(marker)
    assert crashed.engine_stats["restarts"] == 1, crashed.engine_stats
    assert crashed_count == clean_count, (crashed_count, clean_count)
    assert flow_fingerprint(crashed) == flow_fingerprint(clean), (
        "crash-restart run diverged from the clean k=4 run"
    )
    print(
        "shard-smoke: k=4 crash restarted shard 2 and matched the clean run "
        f"({clean_count} flows, {crashed.engine_stats['rounds']} rounds)"
    )


def main() -> int:
    check_digest_parity()
    check_crash_restart()
    print("shard-smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
