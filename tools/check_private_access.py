#!/usr/bin/env python
"""Lint: no module may reach into another module's ``_``-private members.

The observation API redesign promoted every cross-module touch point to
a public name (``ControlChannel.port_stats``, ``FlowEntry.seq``,
``reset_flow_ids`` ...); this checker keeps it that way.  It walks every
module under ``src/repro`` and reports:

* ``obj._name`` attribute access where ``obj`` is anything but the
  literal ``self`` or ``cls`` — the static over-approximation of
  "another module's private member".  Same-class access through another
  instance (``other._seq`` in ``__lt__``) is rare and legitimate; mark
  those lines with a ``# private-ok`` comment to suppress.
* ``from x import _name`` — importing a private name is cross-module by
  definition (relative imports of private *sibling modules* inside one
  package are allowed).

Dunder attributes (``__dict__``) and the bare ``_`` placeholder are
ignored.  Exit status is the number of offending files (0 = clean).

Usage::

    python tools/check_private_access.py [ROOT ...]   # default: src/repro
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple

SUPPRESS_MARKER = "private-ok"

#: (receiver name, attribute) pairs that are documented APIs despite the
#: leading underscore — not another *repro* module's private member.
ALLOWED = {("os", "_exit")}


def _is_private(name: str) -> bool:
    return (
        name.startswith("_")
        and name != "_"
        and not (name.startswith("__") and name.endswith("__"))
    )


def _iter_py_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def check_file(path: str) -> List[Tuple[int, str]]:
    """All private-access violations in one file as (line, message)."""
    with open(path) as handle:
        source = handle.read()
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()

    def suppressed(lineno: int) -> bool:
        return (
            0 < lineno <= len(lines)
            and SUPPRESS_MARKER in lines[lineno - 1]
        )

    violations: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and _is_private(node.attr):
            value = node.value
            if isinstance(value, ast.Name) and value.id in ("self", "cls"):
                continue
            if (
                isinstance(value, ast.Name)
                and (value.id, node.attr) in ALLOWED
            ):
                continue
            if suppressed(node.lineno):
                continue
            receiver = (
                value.id if isinstance(value, ast.Name) else
                type(value).__name__.lower()
            )
            violations.append(
                (
                    node.lineno,
                    f"private attribute access: {receiver}.{node.attr}",
                )
            )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if _is_private(alias.name) and not suppressed(node.lineno):
                    module = node.module or "." * node.level
                    violations.append(
                        (
                            node.lineno,
                            f"private import: from {module} "
                            f"import {alias.name}",
                        )
                    )
    return violations


def main(argv: List[str]) -> int:
    roots = argv or [os.path.join("src", "repro")]
    bad_files = 0
    total = 0
    for root in roots:
        for path in _iter_py_files(root):
            violations = check_file(path)
            if violations:
                bad_files += 1
                total += len(violations)
                for lineno, message in violations:
                    print(f"{path}:{lineno}: {message}")
    if total:
        print(
            f"\n{total} private-access violation(s) in {bad_files} file(s); "
            f"promote the member to a public name or, for same-class "
            f"access, append a '# {SUPPRESS_MARKER}' comment.",
            file=sys.stderr,
        )
    return bad_files


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
