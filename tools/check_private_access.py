#!/usr/bin/env python
"""Deprecation shim: the private-access checker now lives in the lint
framework as rules PRIV001/PRIV002.

Prefer::

    python -m repro lint src/repro --select PRIV --strict

This wrapper keeps the historical contract for existing callers — walk
the given roots (default ``src/repro``), print one line per violation,
and exit with the number of offending *files* (0 = clean).  The
``# private-ok`` suppression comment is still honored by the rules.
"""

from __future__ import annotations

import os
import sys
from typing import List


def main(argv: List[str]) -> int:
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )
    from repro.lint import run_lint

    roots = argv or [os.path.join("src", "repro")]
    report = run_lint(roots, select=["PRIV"])
    bad_files = len({f.file for f in report.findings})
    for finding in report.sorted_findings():
        print(f"{finding.file}:{finding.line}: {finding.message}")
    if report.findings:
        print(
            f"\n{len(report.findings)} private-access violation(s) in "
            f"{bad_files} file(s); promote the member to a public name "
            f"or, for same-class access, append a '# private-ok' comment.",
            file=sys.stderr,
        )
    return bad_files


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
