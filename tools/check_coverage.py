#!/usr/bin/env python3
"""Enforce a line-coverage floor on the hybrid engine.

Reads a coverage.py JSON report (``coverage json`` / pytest-cov's
``--cov-report=json``) and fails if the files under ``src/repro/hybrid/``
fall below the floor, individually or in aggregate.  The hybrid coupler
is gated harder than the rest of the tree because its correctness
contract is differential (bitwise identity at the select="none" /
select="all" edges) — uncovered coupling paths are exactly where that
contract silently erodes.

Usage::

    python tools/check_coverage.py [coverage.json] [--floor 85]
"""

import argparse
import json
import sys

GATED_PREFIX = "src/repro/hybrid/"
DEFAULT_FLOOR = 85.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", default="coverage.json")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="minimum percent covered (default %(default)s)")
    args = parser.parse_args()

    try:
        with open(args.report) as handle:
            report = json.load(handle)
    except OSError as exc:
        print(f"cannot read coverage report: {exc}", file=sys.stderr)
        return 2

    gated = {
        path: data["summary"]
        for path, data in report.get("files", {}).items()
        if GATED_PREFIX in path.replace("\\", "/")
        or "repro/hybrid/" in path.replace("\\", "/")
    }
    if not gated:
        print(f"no files matching {GATED_PREFIX} in {args.report}",
              file=sys.stderr)
        return 2

    failures = []
    covered = missed = 0
    for path in sorted(gated):
        summary = gated[path]
        covered += summary["covered_lines"]
        missed += summary["missing_lines"]
        pct = summary["percent_covered"]
        status = "ok" if pct >= args.floor else "LOW"
        print(f"  {pct:6.1f}%  {status:3}  {path}")
        if pct < args.floor:
            failures.append(f"{path}: {pct:.1f}% < {args.floor:.0f}%")

    total = covered + missed
    aggregate = 100.0 * covered / total if total else 0.0
    print(f"hybrid aggregate: {aggregate:.1f}% "
          f"({covered}/{total} lines, floor {args.floor:.0f}%)")
    if aggregate < args.floor:
        failures.append(f"aggregate {aggregate:.1f}% < {args.floor:.0f}%")

    if failures:
        for failure in failures:
            print(f"coverage floor violated: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
