#!/usr/bin/env python
"""End-to-end wire-control smoke: serve + client in separate processes.

Starts ``repro serve`` on a free loopback port, waits for the printed
listen address, runs ``repro wire-client`` against it, and asserts

* both processes exit 0 within a hard timeout,
* the run delivers all flows (the client actually controlled it), and
* the server reports ``wire.active_connections 0`` after shutdown
  (no leaked connections or threads).

Run directly (CI's wire-smoke job, `make wire-smoke`)::

    python tools/wire_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCENARIO = os.path.join(REPO, "examples", "scenarios", "wire_demo.json")
SERVE_TIMEOUT_S = 120.0
CLIENT_TIMEOUT_S = 120.0
LISTEN_PATTERN = re.compile(r"listening on (\S+?):(\d+)")


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.10 typing
    print(f"wire-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"

    serve = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", SCENARIO,
            "--listen", "127.0.0.1:0", "--budget", "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    try:
        address = None
        deadline = time.monotonic() + SERVE_TIMEOUT_S
        lines = []
        while time.monotonic() < deadline:
            line = serve.stdout.readline()
            if not line:
                break
            lines.append(line)
            found = LISTEN_PATTERN.search(line)
            if found:
                address = f"{found.group(1)}:{found.group(2)}"
                break
        if address is None:
            serve.kill()
            fail("server never printed its listen address:\n" + "".join(lines))
        print(f"wire-smoke: server listening on {address}")

        client = subprocess.run(
            [
                sys.executable, "-m", "repro", "wire-client", address,
                "--mode", "learning",
            ],
            capture_output=True,
            text=True,
            timeout=CLIENT_TIMEOUT_S,
            env=env,
            cwd=REPO,
        )
        print(client.stdout, end="")
        if client.returncode != 0:
            serve.kill()
            fail(
                f"client exited {client.returncode}:\n"
                f"{client.stdout}{client.stderr}"
            )

        try:
            remaining = "".join(lines) + serve.communicate(
                timeout=SERVE_TIMEOUT_S
            )[0]
        except subprocess.TimeoutExpired:
            serve.kill()
            fail("server did not exit after the client finished")
        if serve.returncode != 0:
            fail(f"server exited {serve.returncode}:\n{remaining}")
        if "wire.active_connections 0" not in remaining:
            fail(
                "server did not report wire.active_connections 0 after "
                "shutdown:\n" + remaining
            )
        if "100.0% delivered" not in remaining:
            fail("wire-controlled run did not deliver all flows:\n" + remaining)
    finally:
        if serve.poll() is None:
            serve.kill()
    print("wire-smoke: OK (clean shutdown, all flows delivered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
