# Convenience targets for the Horse reproduction.

.PHONY: install test bench bench-quick examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-quick:
	pytest benchmarks/bench_e1_scale_topology.py benchmarks/bench_e3_accuracy.py --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
