# Convenience targets for the Horse reproduction.

.PHONY: install test lint lint-sim typecheck check bench bench-quick telemetry-gate sweep-smoke shard-smoke wire-smoke examples clean

install:
	pip install -e . || python setup.py develop

# With pytest-cov available (CI installs the dev extras) the suite runs
# under coverage and tools/check_coverage.py enforces the floor on
# src/repro/hybrid/; without it (the sandboxed test image) the suite
# runs plain so `make test` never depends on an uninstalled plugin.
test:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		mkdir -p build && \
		pytest tests/ --cov=repro --cov-report=term \
			--cov-report=json:build/coverage.json && \
		python tools/check_coverage.py build/coverage.json; \
	else \
		echo "pytest-cov not installed; running without coverage"; \
		pytest tests/; \
	fi

# lint/typecheck degrade to a notice when the tool is not installed
# (the sandboxed test image ships the runtime deps only; CI installs
# the dev extras).
lint:
	@command -v ruff >/dev/null 2>&1 \
		&& ruff check src \
		|| echo "ruff not installed; skipping (pip install -e .[dev])"
	python tools/check_private_access.py
	python tools/check_api_surface.py
	$(MAKE) lint-sim

# Simulation-correctness linter (determinism / snapshot-safety /
# telemetry-guard / private-access / handler hygiene): must stay clean
# against the shipped (empty) baseline.
lint-sim:
	mkdir -p build
	PYTHONPATH=src python -m repro lint src/repro \
		--baseline tools/lint-baseline.json --format sarif \
		--output build/lint.sarif --strict

typecheck:
	@command -v mypy >/dev/null 2>&1 \
		&& mypy src/repro \
		|| echo "mypy not installed; skipping (pip install -e .[dev])"

check: lint typecheck test

bench:
	pytest benchmarks/ --benchmark-only

bench-quick:
	pytest benchmarks/bench_e1_scale_topology.py benchmarks/bench_e3_accuracy.py --benchmark-only

# Disabled telemetry must cost <5% on the hot path (vs BENCH_e2.json).
telemetry-gate:
	python -m benchmarks.telemetry_gate

# Crash-isolation smoke: a 4-job sweep on 2 workers with one injected
# worker crash must retry the job and still complete 4/4.
sweep-smoke:
	rm -rf .sweep-smoke
	python -m repro sweep examples/scenarios/sweep_smoke.json \
		--out .sweep-smoke --workers 2
	@python -c "import json; \
		r = json.load(open('.sweep-smoke/report.json')); \
		assert r['execution']['retried'] == [2], r['execution']; \
		assert not r['summary']['failed'], r['summary']; \
		print('sweep-smoke: crash retried, 4/4 jobs completed')"

# Sharded-runtime smoke: k=1 must reproduce the committed golden
# digests bit for bit, and a k=4 run with one injected shard crash
# must restart the shard and finish with results identical to a clean
# k=4 run.
shard-smoke:
	python tools/shard_smoke.py

# External control-plane smoke: `repro serve` + `repro wire-client` in
# separate processes over a real TCP socket; asserts clean shutdown
# (wire.active_connections 0) and full delivery.
wire-smoke:
	python tools/wire_smoke.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks .sweep-smoke build
	rm -f lint.sarif .coverage coverage.json coverage.xml
	find . -name __pycache__ -type d -exec rm -rf {} +
